type event =
  | Admit of Traffic.Flow.t
  | Remove of Traffic.Flow.id
  | Update of Traffic.Flow.t
  | Query
  | Fail_link of Network.Node.id * Network.Node.id
  | Restore_link of Network.Node.id * Network.Node.id

type start_kind = Warm | Cold | Skipped

type shadow_result = { cold_rounds : int; equivalent : bool }

type degradation = {
  rerouted : Traffic.Flow.t list;
  shed : Traffic.Flow.t list;
}

type outcome = {
  seq : int;
  label : string;
  accepted : bool;
  verdict : Analysis.Holistic.verdict;
  rounds : int;
  start : start_kind;
  flow_count : int;
  diagnostics : Gmf_diag.t list;
  shadow : shadow_result option;
  degradation : degradation option;
  explain : Gmf_explain.Attribution.summary option;
}

type summary = {
  events : int;
  admitted : int;
  rejected : int;
  warm_hits : int;
  cold_resets : int;
  rounds_total : int;
  rounds_saved : int;
  flow_count : int;
}

type t = {
  config : Analysis.Config.t;
  topo : Network.Topology.t;
  switches : (Network.Node.id * Click.Switch_model.t) list;
  warm : bool;
  shadow : bool;
  explain : bool;
  survivable : int option;
  exec : Gmf_exec.t option;
  mutable flows : Traffic.Flow.t list; (* id-ascending *)
  mutable failed : (Network.Node.id * Network.Node.id) list;
      (* undirected failed link pairs, smaller id first, newest first *)
  mutable state : Analysis.Jitter_state.t;
  mutable converged : bool;
  mutable report : Analysis.Holistic.report;
  mutable seq : int;
  mutable s_admitted : int;
  mutable s_rejected : int;
  mutable s_warm : int;
  mutable s_cold : int;
  mutable s_rounds : int;
  mutable s_saved : int;
}

let m_events = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.events"

let m_warm_hits =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.warm_hits"

let m_cold_resets =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.cold_resets"

let m_rounds_saved =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "admctl.rounds_saved"

let m_faults =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "faults.injected"

let m_rerouted =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "faults.flows_rerouted"

let m_shed =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "faults.flows_shed"

(* Decade buckets from 1 µs to 10 s: event latencies span lint-only
   rejections (µs) to shadowed multi-flow fixpoints (ms and up). *)
let latency_bounds =
  [|
    1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000;
    1_000_000_000; 10_000_000_000;
  |]

let event_kind = function
  | Admit _ -> "admit"
  | Remove _ -> "remove"
  | Update _ -> "update"
  | Query -> "query"
  | Fail_link _ -> "fail"
  | Restore_link _ -> "restore"

let m_latency kind =
  Gmf_obs.Metrics.histogram ~bounds:latency_bounds Gmf_obs.Metrics.default
    ("admctl.latency_ns." ^ kind)

let empty_report =
  {
    Analysis.Holistic.verdict = Analysis.Holistic.Schedulable;
    rounds = 0;
    results = [];
  }

let create ?(config = Analysis.Config.default) ?(warm = true)
    ?(shadow = false) ?(explain = false) ?survivable ?exec ?(switches = [])
    ~topo () =
  (match survivable with
  | Some k when k < 0 -> invalid_arg "Session.create: survivable < 0"
  | _ -> ());
  {
    config;
    topo;
    switches;
    warm;
    shadow;
    explain;
    survivable;
    exec;
    flows = [];
    failed = [];
    state = Analysis.Jitter_state.create ();
    converged = true;
    report = empty_report;
    seq = 0;
    s_admitted = 0;
    s_rejected = 0;
    s_warm = 0;
    s_cold = 0;
    s_rounds = 0;
    s_saved = 0;
  }

let flows t = t.flows
let flow_count t = List.length t.flows
let report t = t.report
let failed_links t = List.rev t.failed

let summary t =
  {
    events = t.seq;
    admitted = t.s_admitted;
    rejected = t.s_rejected;
    warm_hits = t.s_warm;
    cold_resets = t.s_cold;
    rounds_total = t.s_rounds;
    rounds_saved = t.s_saved;
    flow_count = flow_count t;
  }

let pp_start fmt = function
  | Warm -> Format.pp_print_string fmt "warm"
  | Cold -> Format.pp_print_string fmt "cold"
  | Skipped -> Format.pp_print_string fmt "-"

(* Canonical rendering of everything observable about the session —
   admitted flows (ids, names, routes, specs, remarks), failed pairs,
   the committed verdict and the event counters — digested to a hex
   string.  Two sessions that processed the same events report the same
   fingerprint, which is what the daemon's journal-replay recovery test
   checks; deliberately independent of internal warm-state layout. *)
let fingerprint t =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (f : Traffic.Flow.t) ->
      addf "flow %d %s prio=%d encap=%s route=%s remarks=%s spec=" f.id
        f.name f.priority
        (match f.encap with
        | Ethernet.Encap.Udp -> "udp"
        | Ethernet.Encap.Rtp_udp -> "rtp")
        (String.concat ","
           (List.map string_of_int (Network.Route.nodes f.route)))
        (String.concat ","
           (List.map
              (fun ((a, b), p) -> Printf.sprintf "%d/%d:%d" a b p)
              f.remarks));
      Array.iter
        (fun (fr : Gmf.Frame_spec.t) ->
          addf "(%d,%d,%d,%d)" fr.period fr.deadline fr.jitter
            fr.payload_bits)
        (Gmf.Spec.frames f.spec);
      Buffer.add_char buf '\n')
    t.flows;
  List.iter
    (fun (a, b) -> addf "failed %d-%d\n" a b)
    (List.rev t.failed);
  addf "verdict %s converged=%b\n"
    (Format.asprintf "%a" Analysis.Holistic.pp_verdict
       t.report.Analysis.Holistic.verdict)
    t.converged;
  addf "counters %d %d %d %d %d %d %d\n" t.seq t.s_admitted t.s_rejected
    t.s_warm t.s_cold t.s_rounds t.s_saved;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let scenario_of t flows =
  Traffic.Scenario.make ~switches:t.switches ~topo:t.topo ~flows ()

let insert_sorted flows flow =
  List.sort
    (fun a b -> compare a.Traffic.Flow.id b.Traffic.Flow.id)
    (flow :: flows)

let find_flow t id = List.find_opt (fun f -> f.Traffic.Flow.id = id) t.flows

(* The interference-closure BFS that used to live here moved to
   {!Analysis.Delta.interference_closure}: remove/update/fail events now
   hand the whole edit to the delta engine, which diffs the flow sets,
   closes the edit under node sharing and re-runs the fixpoint only over
   the closure (see [run_fixpoint_delta] below). *)

(* ------------------------------------------------------------------ *)
(* Report comparison (shadow mode)                                    *)
(* ------------------------------------------------------------------ *)

let converged_verdict = function
  | Analysis.Holistic.Schedulable | Analysis.Holistic.Deadline_miss _ -> true
  | Analysis.Holistic.Analysis_failed _ | Analysis.Holistic.No_fixed_point _
    ->
      false

let same_verdict_kind a b =
  match (a, b) with
  | Analysis.Holistic.Schedulable, Analysis.Holistic.Schedulable
  | Analysis.Holistic.Deadline_miss _, Analysis.Holistic.Deadline_miss _
  | Analysis.Holistic.Analysis_failed _, Analysis.Holistic.Analysis_failed _
  | Analysis.Holistic.No_fixed_point _, Analysis.Holistic.No_fixed_point _ ->
      true
  | _ -> false

let bounds_of report =
  List.map
    (fun res ->
      ( res.Analysis.Result_types.flow.Traffic.Flow.id,
        Array.map
          (fun fr -> fr.Analysis.Result_types.total)
          res.Analysis.Result_types.frames ))
    report.Analysis.Holistic.results

let reports_equivalent a b =
  same_verdict_kind a.Analysis.Holistic.verdict b.Analysis.Holistic.verdict
  && (not
        (converged_verdict a.Analysis.Holistic.verdict
        && converged_verdict b.Analysis.Holistic.verdict)
     || bounds_of a = bounds_of b)

(* ------------------------------------------------------------------ *)
(* Event processing                                                   *)
(* ------------------------------------------------------------------ *)

let failure_of_diag = Analysis.Admission.failure_of_diag

let mk_outcome t ?(degradation = None) ?(explain = None) ~label ~accepted
    ~verdict ~rounds ~start ~diagnostics ~shadow () =
  if accepted then t.s_admitted <- t.s_admitted + 1
  else t.s_rejected <- t.s_rejected + 1;
  {
    seq = t.seq;
    label;
    accepted;
    verdict;
    rounds;
    start;
    flow_count = flow_count t;
    diagnostics;
    shadow;
    degradation;
    explain;
  }

let reject_diag t ~label diag =
  mk_outcome t ~label ~accepted:false
    ~verdict:(Analysis.Holistic.Analysis_failed [ failure_of_diag diag ])
    ~rounds:0 ~start:Skipped ~diagnostics:[ diag ] ~shadow:None ()

let duplicate_diag flow existing =
  Gmf_diag.error ~code:"GMF014"
    ~subject:
      (Gmf_diag.Flow
         { id = flow.Traffic.Flow.id; name = flow.Traffic.Flow.name })
    ~suggestion:"allocate an unused id for the candidate"
    "candidate id %d is already admitted (flow %S)" flow.Traffic.Flow.id
    existing.Traffic.Flow.name

let unknown_diag ~what id =
  Gmf_diag.error ~code:"GMF015" ~subject:Gmf_diag.Scenario
    ~suggestion:"admit the flow first" "%s of flow id %d: not admitted" what
    id

(* ------------------------------------------------------------------ *)
(* Degraded mode: link failures                                        *)
(* ------------------------------------------------------------------ *)

let norm_pair a b = (min a b, max a b)

(* Both directions of every failed pair, for route matching and
   {!Network.Pathfind} avoidance. *)
let failed_directed failed =
  List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) failed

let route_uses avoid route =
  List.exists (fun hop -> List.mem hop avoid) (Network.Route.hops route)

let link_label t a b =
  let name id = (Network.Topology.node t.topo id).Network.Node.name in
  Printf.sprintf "%s<->%s" (name a) (name b)

let failed_route_diag t (flow : Traffic.Flow.t) =
  let (a, b) =
    List.find
      (fun hop -> Network.Route.hops flow.Traffic.Flow.route |> List.mem hop)
      (failed_directed t.failed)
  in
  Gmf_diag.error ~code:"GMF016"
    ~subject:
      (Gmf_diag.Flow
         { id = flow.Traffic.Flow.id; name = flow.Traffic.Flow.name })
    ~suggestion:"route the flow elsewhere, or restore the link first"
    "route %s crosses failed link %s"
    (Format.asprintf "%a" Network.Route.pp flow.Traffic.Flow.route)
    (link_label t a b)

let routed_over_failure t (flow : Traffic.Flow.t) =
  t.failed <> []
  && route_uses (failed_directed t.failed) flow.Traffic.Flow.route

(* One fixpoint run on [scenario], warm-started from [init] when the
   session allows it.  Returns the report, the converged jitter state,
   the bookkeeping of how it started, and (explain sessions only) the
   worst-frame attribution summary — computed here because the live
   context still holds the converged jitters the report was built on. *)
(* Shadow mode: re-run the scenario cold through the monolithic analysis
   and compare.  The oracle both the warm chain and the delta engine are
   judged against — [--verify] asserts [equivalent] on every event. *)
let shadow_check t scenario report =
  if not t.shadow then None
  else
    let cold = Analysis.Holistic.analyze ~config:t.config scenario in
    let saved =
      max 0 (cold.Analysis.Holistic.rounds - report.Analysis.Holistic.rounds)
    in
    t.s_saved <- t.s_saved + saved;
    Gmf_obs.Metrics.incr ~by:saved m_rounds_saved;
    Some
      {
        cold_rounds = cold.Analysis.Holistic.rounds;
        equivalent = reports_equivalent report cold;
      }

let run_fixpoint t scenario ~init =
  let init = if t.warm && t.converged then init else None in
  let ctx = Analysis.Ctx.create ~config:t.config scenario in
  let start, report =
    match init with
    | Some state ->
        t.s_warm <- t.s_warm + 1;
        Gmf_obs.Metrics.incr m_warm_hits;
        (Warm, Analysis.Holistic.run_from ctx ~init:state)
    | None ->
        t.s_cold <- t.s_cold + 1;
        Gmf_obs.Metrics.incr m_cold_resets;
        (Cold, Analysis.Holistic.run ctx)
  in
  t.s_rounds <- t.s_rounds + report.Analysis.Holistic.rounds;
  let shadow = shadow_check t scenario report in
  let explain =
    if not t.explain then None
    else
      Gmf_explain.Attribution.summarize
        (Gmf_explain.Attribution.of_ctx ctx report)
  in
  (report, Analysis.Ctx.snapshot ctx, start, shadow, explain)

(* Delta twin of [run_fixpoint], for events that edit the committed flow
   set (remove, update, the fail loop's degraded sets): the committed
   scenario + state + report become an {!Analysis.Delta} base and only
   the edit's interference closure is re-analyzed; every other flow
   carries its committed bounds over.  Counted as a warm start exactly
   when committed state was reused — some flow was certified untouched,
   or a pure-growth closure was warm-seeded; an edit whose closure
   swallows the whole set restarts from source jitters and counts cold,
   as does an engine fallback.  A session that
   disallows warm starts, or whose committed report never converged,
   runs the plain cold fixpoint instead.  The committed scenario always
   lints clean when [t.converged] (every converging path ran the lint
   gate, and removals only relax link loads), so the delta lint-on-
   closure rule would be sound here too; events do their own linting,
   so the engine's gate stays off. *)
let run_fixpoint_delta t scenario =
  if not (t.warm && t.converged) then run_fixpoint t scenario ~init:None
  else begin
    let base =
      Analysis.Delta.make_base ~lint_clean:true ~config:t.config
        ~scenario:(scenario_of t t.flows) ~state:t.state ~report:t.report ()
    in
    let d = Analysis.Delta.analyze base scenario in
    let report = d.Analysis.Delta.d_report in
    let s = d.Analysis.Delta.d_stats in
    let reused =
      (not s.Analysis.Delta.cold_fallback)
      && (s.Analysis.Delta.skipped_flows > 0 || s.Analysis.Delta.warm_seeded)
    in
    let start =
      if reused then begin
        t.s_warm <- t.s_warm + 1;
        Gmf_obs.Metrics.incr m_warm_hits;
        Warm
      end
      else begin
        t.s_cold <- t.s_cold + 1;
        Gmf_obs.Metrics.incr m_cold_resets;
        Cold
      end
    in
    t.s_rounds <- t.s_rounds + report.Analysis.Holistic.rounds;
    let shadow = shadow_check t scenario report in
    let explain =
      if not t.explain then None
      else begin
        (* The delta run's context only covers the closure; rebuild one
           over the full target and restore the merged jitters so the
           attribution sees every flow's converged state. *)
        let ctx = Analysis.Ctx.create ~config:t.config scenario in
        Analysis.Ctx.restore ctx d.Analysis.Delta.d_state;
        Gmf_explain.Attribution.summarize
          (Gmf_explain.Attribution.of_ctx ctx report)
      end
    in
    (report, d.Analysis.Delta.d_state, start, shadow, explain)
  end

let commit t ~flows ~state ~report =
  t.flows <- flows;
  t.state <- state;
  t.converged <- converged_verdict report.Analysis.Holistic.verdict;
  t.report <- report

(* The survivability gate of admit/update events, when the session was
   created with [?survivable].  Evaluated on the tentative scenario only
   after the fixpoint accepts — see [try_set]. *)
let survive_gate t (flow : Traffic.Flow.t) =
  match t.survivable with
  | None -> None
  | Some k ->
      Some
        (fun scenario ->
          Gmf_faults.Survive.admission_gate ?exec:t.exec ~config:t.config ~k
            ~candidate:flow scenario)

(* Admit and update share the accept-or-rollback shape; [run] is the
   fixpoint engine appropriate to the event (monolithic warm chain for
   admissions, delta for updates), [commit_on_reject] is true for
   removals only (handled separately).  [gate] (survivability) runs on
   the tentative scenario after the fixpoint accepts and before the
   commit: a non-empty diagnostic list rejects, leaving the session
   untouched. *)
let try_set ?gate t ~label ~flows ~run =
  let scenario = scenario_of t flows in
  let lint = Gmf_lint.Lint.run ~config:t.config scenario in
  match Gmf_lint.Lint.errors lint with
  | _ :: _ as errors ->
      mk_outcome t ~label ~accepted:false
        ~verdict:
          (Analysis.Holistic.Analysis_failed
             (List.map failure_of_diag errors))
        ~rounds:0 ~start:Skipped
        ~diagnostics:lint.Gmf_lint.Lint.diagnostics ~shadow:None ()
  | [] -> (
      (* Static pre-analysis: a certified-infeasible flow rejects before
         any fixpoint (mirroring the lint fast path), and oversized
         interference components surface as GMF019 warnings.  Accepted
         events still run the monolithic warm fixpoint so the session's
         warm-start chain stays intact. *)
      let pre = Gmf_precheck.Precheck.run ~config:t.config scenario in
      let pre_diags = Gmf_precheck.Precheck.diagnostics pre in
      match Gmf_diag.at_least Gmf_diag.Error pre_diags with
      | _ :: _ as errors ->
          mk_outcome t ~label ~accepted:false
            ~verdict:
              (Analysis.Holistic.Analysis_failed
                 (List.map failure_of_diag errors))
            ~rounds:0 ~start:Skipped
            ~diagnostics:(lint.Gmf_lint.Lint.diagnostics @ pre_diags)
            ~shadow:None ()
      | [] -> (
          let diagnostics = lint.Gmf_lint.Lint.diagnostics @ pre_diags in
          let report, state, start, shadow, explain = run scenario in
          let accepted = Analysis.Holistic.is_schedulable report in
          let gate_diags =
            match gate with Some g when accepted -> g scenario | _ -> []
          in
          match gate_diags with
          | _ :: _ ->
              mk_outcome t ~label ~accepted:false
                ~verdict:
                  (Analysis.Holistic.Analysis_failed
                     (List.map failure_of_diag gate_diags))
                ~rounds:report.Analysis.Holistic.rounds ~start
                ~diagnostics:(diagnostics @ gate_diags) ~shadow ~explain ()
          | [] ->
              if accepted then commit t ~flows ~state ~report;
              mk_outcome t ~label ~accepted
                ~verdict:report.Analysis.Holistic.verdict
                ~rounds:report.Analysis.Holistic.rounds ~start ~diagnostics
                ~shadow ~explain ()))

let apply_admit t flow =
  let label = "admit " ^ flow.Traffic.Flow.name in
  match find_flow t flow.Traffic.Flow.id with
  | Some existing -> reject_diag t ~label (duplicate_diag flow existing)
  | None when routed_over_failure t flow ->
      reject_diag t ~label (failed_route_diag t flow)
  | None ->
      try_set t ?gate:(survive_gate t flow) ~label
        ~flows:(insert_sorted t.flows flow)
        ~run:(fun scenario ->
          run_fixpoint t scenario ~init:(Some t.state))

let apply_remove t id =
  match find_flow t id with
  | None ->
      reject_diag t
        ~label:(Printf.sprintf "remove #%d" id)
        (unknown_diag ~what:"remove" id)
  | Some victim ->
      let label = "remove " ^ victim.Traffic.Flow.name in
      let remaining =
        List.filter (fun f -> f.Traffic.Flow.id <> id) t.flows
      in
      let scenario = scenario_of t remaining in
      let report, state, start, shadow, explain =
        run_fixpoint_delta t scenario
      in
      (* The departure happens regardless of the refreshed verdict. *)
      commit t ~flows:remaining ~state ~report;
      mk_outcome t ~label ~accepted:true
        ~verdict:report.Analysis.Holistic.verdict
        ~rounds:report.Analysis.Holistic.rounds ~start ~diagnostics:[]
        ~shadow ~explain ()

let apply_update t flow =
  let label = "update " ^ flow.Traffic.Flow.name in
  match find_flow t flow.Traffic.Flow.id with
  | None ->
      reject_diag t ~label (unknown_diag ~what:"update" flow.Traffic.Flow.id)
  | Some _ when routed_over_failure t flow ->
      reject_diag t ~label (failed_route_diag t flow)
  | Some _ ->
      let rest =
        List.filter
          (fun f -> f.Traffic.Flow.id <> flow.Traffic.Flow.id)
          t.flows
      in
      (* The delta engine diffs old vs new parameters itself, closes the
         edit under interference and restarts only the closure from
         source jitters (a parameter change is never a pure growth). *)
      try_set t ?gate:(survive_gate t flow) ~label
        ~flows:(insert_sorted rest flow) ~run:(run_fixpoint_delta t)

let link_subject a b = Gmf_diag.Link { src = a; dst = b }

(* A link failure commits like a removal: the outage happened whether or
   not the degraded set stays schedulable.  Flows routed over the pair
   are rerouted around every currently-failed link when an alternate
   route exists, shed outright when none does, and then shed greedily
   ({!Gmf_faults.Survive.shed_order}) until the degraded set is
   schedulable again.  Every settle attempt runs through the delta
   engine against the committed pre-failure fixpoint: flows outside the
   interference closure of the affected set keep their converged bounds
   outright (their routes never met the affected flows), and only the
   closure is re-analyzed. *)
let apply_fail t a b =
  let label = "fail link " ^ link_label t a b in
  let pair = norm_pair a b in
  let exists =
    Network.Topology.find_link t.topo ~src:a ~dst:b <> None
    || Network.Topology.find_link t.topo ~src:b ~dst:a <> None
  in
  if not exists then
    reject_diag t ~label
      (Gmf_diag.error ~code:"GMF016" ~subject:(link_subject a b)
         ~suggestion:"name two adjacent nodes of the session topology"
         "fail link: no link %s" (link_label t a b))
  else if List.mem pair t.failed then
    reject_diag t ~label
      (Gmf_diag.error ~code:"GMF016" ~subject:(link_subject a b)
         ~suggestion:"drop the duplicate fail event"
         "link %s is already failed" (link_label t a b))
  else begin
    Gmf_obs.Metrics.incr m_faults;
    let failed = pair :: t.failed in
    let avoid = failed_directed failed in
    let affected, safe =
      List.partition
        (fun (f : Traffic.Flow.t) ->
          route_uses avoid f.Traffic.Flow.route)
        t.flows
    in
    t.failed <- failed;
    if affected = [] then
      mk_outcome t ~label ~accepted:true
        ~verdict:t.report.Analysis.Holistic.verdict ~rounds:0 ~start:Skipped
        ~diagnostics:[] ~shadow:None
        ~degradation:(Some { rerouted = []; shed = [] })
        ()
    else begin
      (* Phase 1: reroute around every failed link, or pre-shed.  One
         route cache per event: affected flows sharing endpoints resolve
         to a single enumeration. *)
      let pcache = Network.Pathfind.Cache.create t.topo in
      let placed =
        List.map
          (fun (f : Traffic.Flow.t) ->
            let route = f.Traffic.Flow.route in
            match
              Network.Pathfind.Cache.k_shortest ~avoid_links:avoid pcache
                ~src:(Network.Route.source route)
                ~dst:(Network.Route.destination route)
            with
            | [] ->
                Gmf_obs.Metrics.incr m_shed;
                (f, None)
            | alt :: _ ->
                Gmf_obs.Metrics.incr m_rerouted;
                (f, Some (Analysis.Rerouting.with_route f alt)))
          affected
      in
      let pre_shed =
        List.filter_map
          (fun (f, s) -> if s = None then Some f else None)
          placed
      in
      (* Phase 2: greedy shedding among the rerouted survivors until the
         degraded set is schedulable (or no survivor is left to shed).
         Each attempt is a delta against the committed pre-failure
         fixpoint: reroutes are changed flows, sheds are removals, so
         only their interference closure re-runs while flows the outage
         never touched keep their committed bounds. *)
      let rec settle pool shed rounds_acc =
        let flows = List.sort
            (fun (x : Traffic.Flow.t) (y : Traffic.Flow.t) ->
              compare x.Traffic.Flow.id y.Traffic.Flow.id)
            (safe @ pool)
        in
        let scenario = scenario_of t flows in
        let lint_errors =
          Gmf_lint.Lint.errors (Gmf_lint.Lint.run ~config:t.config scenario)
        in
        match (lint_errors, Gmf_faults.Survive.shed_order pool) with
        | _ :: _, victim :: _ ->
            (* e.g. a reroute saturates a link (GMF201): shed without
               spending fixpoint rounds. *)
            Gmf_obs.Metrics.incr m_shed;
            settle
              (List.filter
                 (fun (f : Traffic.Flow.t) ->
                   f.Traffic.Flow.id <> victim.Traffic.Flow.id)
                 pool)
              (victim :: shed) rounds_acc
        | _ :: _, [] ->
            let report =
              {
                Analysis.Holistic.verdict =
                  Analysis.Holistic.Analysis_failed
                    (List.map failure_of_diag lint_errors);
                rounds = 0;
                results = [];
              }
            in
            ( flows, pool, shed, report,
              Analysis.Jitter_state.create (), Skipped, None, None,
              rounds_acc )
        | [], _ -> (
            let report, state, start, shadow, explain =
              run_fixpoint_delta t scenario
            in
            let rounds_acc =
              rounds_acc + report.Analysis.Holistic.rounds
            in
            if Analysis.Holistic.is_schedulable report then
              ( flows, pool, shed, report, state, start, shadow, explain,
                rounds_acc )
            else
              match Gmf_faults.Survive.shed_order pool with
              | [] ->
                  ( flows, pool, shed, report, state, start, shadow,
                    explain, rounds_acc )
              | victim :: _ ->
                  Gmf_obs.Metrics.incr m_shed;
                  settle
                    (List.filter
                       (fun (f : Traffic.Flow.t) ->
                         f.Traffic.Flow.id <> victim.Traffic.Flow.id)
                       pool)
                    (victim :: shed) rounds_acc)
      in
      let pool0 = List.filter_map snd placed in
      let flows, survivors, shed, report, state, start, shadow, explain,
          rounds =
        settle pool0 [] 0
      in
      commit t ~flows ~state ~report;
      mk_outcome t ~label ~accepted:true
        ~verdict:report.Analysis.Holistic.verdict ~rounds ~start
        ~diagnostics:[] ~shadow ~explain
        ~degradation:
          (Some { rerouted = survivors; shed = pre_shed @ List.rev shed })
        ()
    end
  end

(* Restoring a link only widens the route search space of later events;
   flows stay on their degraded routes and the committed fixpoint stays
   valid, so no re-analysis runs. *)
let apply_restore t a b =
  let label = "restore link " ^ link_label t a b in
  let pair = norm_pair a b in
  if not (List.mem pair t.failed) then
    reject_diag t ~label
      (Gmf_diag.error ~code:"GMF016" ~subject:(link_subject a b)
         ~suggestion:"fail the link first" "link %s is not failed"
         (link_label t a b))
  else begin
    t.failed <- List.filter (fun p -> p <> pair) t.failed;
    mk_outcome t ~label ~accepted:true
      ~verdict:t.report.Analysis.Holistic.verdict ~rounds:0 ~start:Skipped
      ~diagnostics:[] ~shadow:None
      ~degradation:(Some { rerouted = []; shed = [] })
      ()
  end

let apply_query t =
  mk_outcome t ~label:"query"
    ~accepted:(Analysis.Holistic.is_schedulable t.report)
    ~verdict:t.report.Analysis.Holistic.verdict ~rounds:0 ~start:Skipped
    ~diagnostics:[] ~shadow:None ()

let span_name = function
  | Admit _ -> "admctl.admit"
  | Remove _ -> "admctl.remove"
  | Update _ -> "admctl.update"
  | Query -> "admctl.query"
  | Fail_link _ -> "admctl.fail"
  | Restore_link _ -> "admctl.restore"

let apply t event =
  t.seq <- t.seq + 1;
  Gmf_obs.Metrics.incr m_events;
  let timed = Gmf_obs.Metrics.enabled Gmf_obs.Metrics.default in
  let t0 = if timed then Unix.gettimeofday () else 0. in
  let outcome =
    Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"admctl"
      (span_name event) (fun () ->
        match event with
        | Admit flow -> apply_admit t flow
        | Remove id -> apply_remove t id
        | Update flow -> apply_update t flow
        | Query -> apply_query t
        | Fail_link (a, b) -> apply_fail t a b
        | Restore_link (a, b) -> apply_restore t a b)
  in
  if timed then
    Gmf_obs.Metrics.observe
      (m_latency (event_kind event))
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
  outcome
