(** Drive a {!Session} from a parsed [.admtrace]
    ({!Scenario_io.Admtrace}), and render the per-event outcomes in the
    deterministic formats the CLI, the golden tests and CI replay share.

    Everything emitted here is stable across runs: no timestamps, no
    wall-clock figures — only event labels, verdicts, round counts and
    diagnostics, all of which are deterministic for a given trace and
    configuration. *)

type result = {
  outcomes : Session.outcome list;  (** In trace order. *)
  session : Session.t;  (** Final session, for summaries and reports. *)
}

val session_event : Scenario_io.Admtrace.event -> Session.event
(** The trace-event to session-event mapping {!run} applies — exported
    so streaming consumers ([gmfnetd] session workers) replay events
    exactly as batch replay does. *)

val run :
  ?config:Analysis.Config.t ->
  ?warm:bool ->
  ?shadow:bool ->
  ?explain:bool ->
  ?survivable:int ->
  ?exec:Gmf_exec.t ->
  ?on_outcome:(Session.outcome -> unit) ->
  Scenario_io.Admtrace.t ->
  result
(** Replay every event of the trace in order.  [on_outcome] fires after
    each event (for streaming output); optional session knobs —
    including the [survivable] gate and its [exec] backend — are passed
    through to {!Session.create}. *)

val outcome_line : Session.outcome -> string
(** One transcript line per event, e.g.
    ["#03 admit bulk0 | rejected | deadline miss (2 frames) | rounds=7 start=warm flows=2"],
    followed by one indented line per warning- or error-level diagnostic
    (hints are elided), and — explain sessions only — indented
    ["binding: ..."] / ["interferer: ..."] lines naming the worst frame,
    its binding hop and its binding interferer.  No trailing newline. *)

val transcript : Session.outcome list -> string
(** All {!outcome_line}s, newline-separated, with a trailing newline —
    the golden-file format. *)

val outcome_jsonl : Session.outcome -> string
(** The outcome as one flat JSON object (no trailing newline), string and
    integer fields only, in the style of [Gmf_lint.Lint_json]. *)

val mismatches : Session.outcome list -> int
(** Number of shadow comparisons that disagreed with the warm result.
    Always 0 without [shadow:true]; a non-zero value falsifies the
    warm-start soundness argument and fails [gmfnet session --verify]. *)

val pp_summary : Format.formatter -> Session.summary -> unit
(** Multi-line key/value summary block. *)
