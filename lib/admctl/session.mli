(** Long-lived admission-control sessions with warm-started holistic
    fixpoints (paper Section 3.5, run as a service).

    A session owns the currently-admitted flow set, its converged
    {!Analysis.Jitter_state.t} and the last committed report.  Each event
    re-runs the Tindell & Clark-style holistic iteration on the tentative
    flow set, but instead of starting cold it warm-starts from the
    previous fixed point whenever that is sound:

    - {e admit}: jitters grow monotonically when flows are added, so the
      old fixed point sits below the new one and
      {!Analysis.Holistic.run_from} converges to the {e same} verdict and
      bounds as a cold {!Analysis.Holistic.analyze}, in at most as many
      rounds;
    - {e remove}/{e update}/{e fail}: the edit goes through the
      {!Analysis.Delta} engine — the committed scenario, jitter state
      and report form the delta base, only the edit's interference
      closure is re-analyzed, and every flow outside it carries its
      committed bounds over unrecomputed.  An event counts [Warm] when
      committed state was actually reused (flows certified untouched);
      an edit whose closure swallows the whole set restarts from source
      jitters and counts [Cold].

    Candidate flows are lint-gated ({!Gmf_lint}) before any fixpoint runs;
    a lint error rejects with [rounds = 0] exactly like
    [Analysis.Admission].  Rejected events leave the session untouched.

    Telemetry: every event bumps [admctl.events], a per-kind span and an
    [admctl.latency_ns.<kind>] histogram sample on the default
    registry/tracer; warm starts bump [admctl.warm_hits], cold resets
    [admctl.cold_resets], and shadow mode accumulates
    [admctl.rounds_saved]. *)

type t

type event =
  | Admit of Traffic.Flow.t
      (** Reject on duplicate id ([GMF014]), lint error, or an
          unschedulable extended set; commit otherwise. *)
  | Remove of Traffic.Flow.id
      (** Reject on unknown id ([GMF015]); always commits otherwise (the
          flow departs regardless of the refreshed verdict). *)
  | Update of Traffic.Flow.t
      (** Replace the flow with the same id atomically; reject (keeping
          the old flow) on unknown id, lint error or an unschedulable
          result. *)
  | Query  (** Report the committed verdict; never runs a fixpoint. *)
  | Fail_link of Network.Node.id * Network.Node.id
      (** Both directions of the (undirected) pair go down.  Commits like
          a removal — the outage happened regardless of the verdict:
          flows routed over the pair are rerouted around {e every}
          currently-failed link ({!Network.Pathfind.k_shortest}), shed
          when no alternate route exists, then shed greedily in
          {!Gmf_faults.Survive.shed_order} until the degraded set is
          schedulable.  Each attempt is an {!Analysis.Delta} run against
          the committed pre-failure fixpoint: flows outside the affected
          set's interference closure keep their bounds.  Rejects ([GMF016],
          session untouched) an unknown or already-failed pair. *)
  | Restore_link of Network.Node.id * Network.Node.id
      (** Marks the pair up again so later events may route over it.
          Flows stay on their degraded routes (the committed fixpoint
          stays valid, no re-analysis); re-admit or update them to move
          back.  Rejects ([GMF016]) a pair that is not failed. *)

type start_kind =
  | Warm
      (** Committed state was reused: the fixpoint was seeded from the
          previous converged state, or the delta engine certified flows
          untouched and carried their bounds over. *)
  | Cold  (** Fixpoint from the all-zero state, as a batch run. *)
  | Skipped  (** No fixpoint ran (query, duplicate, lint rejection). *)

type shadow_result = {
  cold_rounds : int;  (** Rounds of the cold reference run. *)
  equivalent : bool;
      (** Whether warm and cold agreed on verdict and per-frame bounds
          (verdict constructor only for non-converged outcomes). *)
}

type degradation = {
  rerouted : Traffic.Flow.t list;
      (** Affected flows that survived on an alternate route (carrying
          their new routes), in the order they were rerouted. *)
  shed : Traffic.Flow.t list;
      (** Affected flows dropped from the admitted set: first those with
          no alternate route, then greedy sheds in policy order. *)
}

type outcome = {
  seq : int;  (** 1-based event number within the session. *)
  label : string;  (** e.g. ["admit voip0"], ["remove #3"]. *)
  accepted : bool;
  verdict : Analysis.Holistic.verdict;
  rounds : int;  (** Holistic rounds this event executed (0 if none). *)
  start : start_kind;
  flow_count : int;  (** Admitted flows {e after} the event. *)
  diagnostics : Gmf_diag.t list;  (** Lint pre-pass + session errors. *)
  shadow : shadow_result option;  (** Present in shadow sessions only. *)
  degradation : degradation option;
      (** Present on accepted [Fail_link]/[Restore_link] events only. *)
  explain : Gmf_explain.Attribution.summary option;
      (** Explain sessions only: the worst (smallest-slack) frame of this
          event's fixpoint run and what binds it, attributed on the live
          context before commit.  [None] when no fixpoint ran. *)
}

type summary = {
  events : int;
  admitted : int;  (** Events that were accepted. *)
  rejected : int;
  warm_hits : int;
  cold_resets : int;
  rounds_total : int;
  rounds_saved : int;
      (** Shadow sessions: sum over events of
          [max 0 (cold rounds - warm rounds)]; 0 otherwise. *)
  flow_count : int;
}

val create :
  ?config:Analysis.Config.t ->
  ?warm:bool ->
  ?shadow:bool ->
  ?explain:bool ->
  ?survivable:int ->
  ?exec:Gmf_exec.t ->
  ?switches:(Network.Node.id * Click.Switch_model.t) list ->
  topo:Network.Topology.t ->
  unit ->
  t
(** An empty session over a fixed topology.  [warm:false] forces a cold
    reset on every fixpoint event — the baseline the churn benchmark
    measures against.  [shadow:true] additionally runs the cold analysis
    after every warm-started event and records the comparison in
    {!outcome.shadow} (the warm result stays authoritative).
    [explain:true] attributes every fixpoint run and attaches the
    worst-frame {!Gmf_explain.Attribution.summary} to the outcome.

    [survivable:k] arms the survivable-admission gate: an admit or
    update whose tentative set is schedulable is additionally swept with
    {!Gmf_faults.Survive.admission_gate} and rejected with a [GMF017]
    diagnostic when the candidate flow would be shed under some
    [<= k]-component failure.  The gate's failure cases are evaluated
    through [exec] (default {!Gmf_exec.seq}; outcomes are
    backend-independent).  Raises [Invalid_argument] when [k < 0]. *)

val apply : t -> event -> outcome
(** Process one event.  Never raises on user-level problems (duplicate or
    unknown ids, lint errors, unschedulable sets) — those reject with
    diagnostics.  [Invalid_argument] still escapes for caller bugs, e.g. a
    flow routed over a different topology. *)

val flows : t -> Traffic.Flow.t list
(** The admitted set, in id order. *)

val flow_count : t -> int

val report : t -> Analysis.Holistic.report
(** The last committed report (of the current admitted set). *)

val failed_links : t -> (Network.Node.id * Network.Node.id) list
(** Currently-failed undirected pairs (smaller id first), oldest first. *)

val summary : t -> summary

val fingerprint : t -> string
(** Hex digest of the observable session state: admitted flows (ids,
    names, priorities, routes, specs, remarks), failed link pairs, the
    committed verdict and the event counters.  Deterministic — two
    sessions that processed the same event sequence over the same
    topology fingerprint identically, whatever mix of warm starts,
    process restarts or journal replays produced them.  Internal
    fixpoint state is deliberately excluded (it is an implementation
    detail warm/cold equivalence already guards). *)

val pp_start : Format.formatter -> start_kind -> unit
(** ["warm"], ["cold"], ["-"]. *)
