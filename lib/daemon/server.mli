(** The [gmfnetd] event loop: a single-threaded [Unix.select] server
    multiplexing JSONL clients (over a Unix-domain socket) and
    supervised per-session analysis workers.

    Robustness contract:

    - {e supervision}: each session runs in its own
      {!Gmf_exec.Persistent} worker.  A crash, an exception out of the
      event machine, or a missed per-request deadline answers the
      affected request with an explicit [crashed]/[deadline] rejection,
      kills the worker and rebuilds it — paced by exponential backoff —
      by replaying the session's write-ahead journal.  The rebuilt
      worker carries byte-identical state for every committed event
      (same flow ids, transcripts and fingerprint).
    - {e durability}: an event is journaled with write+[fsync]
      {e after} the worker applied it and {e before} the decision is
      released, so any decision a client observed survives [kill -9] of
      daemon and workers alike; re-opening the session replays the
      journal.
    - {e shedding}: per-session queues are bounded at
      {!config.queue_cap}; arrivals beyond the cap are answered
      [overloaded] immediately.  Nothing is silently dropped, and
      nothing is admitted without a completed, journaled analysis.
    - {e drain}: SIGTERM/SIGINT stop the accept loop, finish every
      queued request, flush every answer, stop the workers and exit;
      events arriving during the drain are answered [shutdown].
    - {e isolation}: client sockets are non-blocking with per-connection
      output buffering flushed from the [select] writability set — a
      client that stops reading cannot stall the loop, other sessions,
      deadline enforcement or the drain; it is disconnected once its
      backlog exceeds 1 MiB or makes no progress for 10 s.

    Journal-replay work is internal: it is exempt from
    {!config.deadline_s} (each replayed case is still bounded by the
    worker's own per-case timeout), so recovery of a session whose
    events replay slower than the client-facing latency bound cannot be
    starved into a respawn loop.

    Telemetry (default registry): [daemon.requests],
    [daemon.events_committed], [daemon.events_replayed], [daemon.shed],
    [daemon.deadline_kills], [daemon.worker_crashes] counters, and
    [daemon.sessions] / [daemon.queue_depth] gauges. *)

type config = {
  socket_path : string;  (** Unix-domain socket; replaced if present. *)
  journal_dir : string;  (** Created on demand; one journal per session. *)
  max_sessions : int;
      (** Live-session cap; an idle unattached session is evicted (its
          journal stays, a later open recovers it) before a new open is
          refused [overloaded]. *)
  queue_cap : int;  (** Per-session pending-request bound. *)
  deadline_s : float option;
      (** Per-request worker deadline; [None] disables.  Applies to
          client requests only — journal replays are exempt. *)
  backoff_base_s : float;  (** Respawn backoff, first retry delay. *)
  backoff_max_s : float;  (** Respawn backoff cap. *)
  exec_jobs : int;  (** Executor width inside each worker. *)
}

val default_config : config
(** [gmfnetd.sock] / [gmfnetd.journal] in the current directory, 8
    sessions, queue cap 64, no deadline, 0.05s–5s backoff, sequential
    executor. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Bind, listen, serve until SIGTERM/SIGINT, drain, clean up (workers
    stopped, journals closed, socket unlinked) and return.  [on_ready]
    fires once the socket is listening, before the first accept — for
    readiness notification in tests and scripts.  Raises
    [Invalid_argument] on a nonsensical config ([max_sessions] or
    [queue_cap] < 1, non-positive deadline, empty socket path); [Unix]
    errors from binding escape. *)
