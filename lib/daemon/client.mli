(** Client side of the [gmfnetd] protocol: a blocking JSONL connection
    over the daemon's Unix-domain socket, plus the trace driver the
    CLI, the CI smoke job and the benchmarks share.

    All calls are synchronous (send one request, wait for its one
    response) and never raise on I/O problems — errors come back as
    [Error message]. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's socket path. *)

val close : t -> unit

val send : t -> Scenario_io.Admtrace_jsonl.request -> (unit, string) result
(** Fire a request without waiting — pipelining, for overload tests. *)

val recv : t -> (Scenario_io.Admtrace_jsonl.response, string) result
(** Read the next response line (blocking). *)

val request :
  t ->
  Scenario_io.Admtrace_jsonl.request ->
  (Scenario_io.Admtrace_jsonl.response, string) result
(** {!send} then {!recv}. *)

val slice_trace : string -> string * string list
(** Split admtrace text into the topology prologue and one chunk per
    event (a directive line, or a flow block through its [end] plus any
    trailing comment lines) — the unit an {!Scenario_io.Admtrace_jsonl.request.Event}
    carries.  Pure line scanning on the event keywords; feed the result
    to the daemon and the stateful parser applies the real grammar. *)

type trace_result = {
  output : string;
      (** Transcript lines, blank line, [summary:] block — byte-identical
          to [gmfnet session] on the same trace when nothing was
          rejected. *)
  mismatches : int;  (** Shadow disagreements ([verify] mode only). *)
  rejected : (string * string) list;
      (** [(code, message)] per refused event (overload shedding, parse
          errors); refused events do not appear in [output]. *)
}

val run_trace :
  socket:string ->
  session:string ->
  ?verify:bool ->
  ?explain:bool ->
  ?cold:bool ->
  ?survivable:int ->
  ?throttle_s:float ->
  string ->
  (trace_result, string) result
(** Open [session] (topology = the trace's prologue), stream every
    event chunk synchronously, collect the summary, close.  [Error] on
    connection loss or a refused open/summary. *)

val fingerprint :
  socket:string -> session:string -> (string * int, string) result
(** Attach to an existing (possibly journal-recovered) session and
    fetch its state digest and event count.  The fingerprint request is
    queued behind any recovery replay, so the digest reflects the fully
    recovered state. *)
