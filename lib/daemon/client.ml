(* Client side of the gmfnetd protocol: a blocking JSONL connection,
   plus the trace driver the CLI, the CI smoke job and the benchmarks
   share — it streams a whole .admtrace file through a daemon session
   and renders output byte-identical to [gmfnet session]. *)

module Jsonl = Scenario_io.Admtrace_jsonl

type t = { fd : Unix.file_descr; buf : Buffer.t }

let write_all fd data =
  let len = String.length data in
  let rec go off =
    if off < len then
      match Unix.write_substring fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; buf = Buffer.create 1024 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with _ -> ()

let send t req =
  match write_all t.fd (Jsonl.encode_request req ^ "\n") with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

let recv t =
  let rec line () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear t.buf;
        Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
        Ok (String.sub s 0 i)
    | None -> (
        let bytes = Bytes.create 4096 in
        match Unix.read t.fd bytes 0 (Bytes.length bytes) with
        | 0 -> Error "connection closed by daemon"
        | n ->
            Buffer.add_subbytes t.buf bytes 0 n;
            line ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> line ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "recv failed: %s" (Unix.error_message e)))
  in
  match line () with Ok l -> Jsonl.decode_response l | Error _ as e -> e

let request t req =
  match send t req with Ok () -> recv t | Error _ as e -> e

(* ---------------- trace slicing ---------------- *)

(* An event starts at a line whose first word is an event keyword.
   Inside a flow block lines are [frame]/[end]/comments, none of which
   match, so keyword scanning slices correctly without a full parse.
   The grammar's tokenizer treats tabs as separators, so fold them into
   spaces before splitting off the first word. *)
let is_event_start raw =
  let raw =
    String.trim (String.map (fun c -> if c = '\t' then ' ' else c) raw)
  in
  let word =
    match String.index_opt raw ' ' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  List.mem word [ "admit"; "update"; "remove"; "query"; "fail"; "restore" ]

let slice_trace text =
  let lines = String.split_on_char '\n' text in
  let prologue = ref [] in
  let chunks = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some acc -> (
        chunks := List.rev acc :: !chunks;
        current := None)
    | None -> ()
  in
  List.iter
    (fun raw ->
      if is_event_start raw then begin
        flush ();
        current := Some [ raw ]
      end
      else
        match !current with
        | Some acc -> current := Some (raw :: acc)
        | None -> prologue := raw :: !prologue)
    lines;
  flush ();
  ( String.concat "\n" (List.rev !prologue),
    List.map (String.concat "\n") (List.rev !chunks) )

(* ---------------- trace driver ---------------- *)

type trace_result = {
  output : string;
      (* Byte-identical to [gmfnet session] on the same trace:
         transcript lines, blank line, "summary:" block. *)
  mismatches : int;  (* Shadow disagreements, verify mode only. *)
  rejected : (string * string) list;  (* (code, message) refusals. *)
}

let has_mismatch text =
  let needle = " shadow=MISMATCH" in
  let nl = String.length needle and tl = String.length text in
  let rec at i =
    i + nl <= tl && (String.sub text i nl = needle || at (i + 1))
  in
  at 0

let run_trace ~socket ~session ?(verify = false) ?(explain = false)
    ?(cold = false) ?survivable ?(throttle_s = 0.) text =
  let prologue, chunks = slice_trace text in
  match connect socket with
  | Error _ as e -> e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          let ( let* ) = Result.bind in
          let out = Buffer.create 4096 in
          let mismatches = ref 0 in
          let rejections = ref [] in
          let* _opened =
            match
              request c
                (Jsonl.Open
                   {
                     session;
                     topology = prologue;
                     verify;
                     explain;
                     cold;
                     survivable;
                     throttle_s;
                   })
            with
            | Ok (Jsonl.Opened _ as r) -> Ok r
            | Ok (Jsonl.Rejected { code; message }) ->
                Error (Printf.sprintf "open rejected [%s]: %s" code message)
            | Ok _ -> Error "unexpected response to open"
            | Error _ as e -> e
          in
          let* () =
            List.fold_left
              (fun acc chunk ->
                let* () = acc in
                match request c (Jsonl.Event { text = chunk }) with
                | Ok (Jsonl.Outcome o) ->
                    Buffer.add_string out o.text;
                    Buffer.add_char out '\n';
                    if verify && has_mismatch o.text then incr mismatches;
                    Ok ()
                | Ok (Jsonl.Rejected { code; message }) ->
                    rejections := (code, message) :: !rejections;
                    Ok ()
                | Ok _ -> Error "unexpected response to event"
                | Error _ as e -> e)
              (Ok ()) chunks
          in
          let* () =
            match request c Jsonl.Summary with
            | Ok (Jsonl.Summary_is { text }) ->
                Buffer.add_string out "\nsummary:\n";
                Buffer.add_string out text;
                Ok ()
            | Ok (Jsonl.Rejected { code; message }) ->
                Error (Printf.sprintf "summary rejected [%s]: %s" code message)
            | Ok _ -> Error "unexpected response to summary"
            | Error _ as e -> e
          in
          ignore (request c Jsonl.Close);
          Ok
            {
              output = Buffer.contents out;
              mismatches = !mismatches;
              rejected = List.rev !rejections;
            })

let fingerprint ~socket ~session =
  match connect socket with
  | Error _ as e -> e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          match
            request c
              (Jsonl.Open
                 {
                   session;
                   topology = "";
                   verify = false;
                   explain = false;
                   cold = false;
                   survivable = None;
                   throttle_s = 0.;
                 })
          with
          | Ok (Jsonl.Opened _) -> (
              match request c Jsonl.Fingerprint with
              | Ok (Jsonl.Fingerprint_is { digest; events }) ->
                  Ok (digest, events)
              | Ok (Jsonl.Rejected { code; message }) ->
                  Error (Printf.sprintf "[%s] %s" code message)
              | Ok _ -> Error "unexpected response to fingerprint"
              | Error _ as e -> e)
          | Ok (Jsonl.Rejected { code; message }) ->
              Error (Printf.sprintf "open rejected [%s]: %s" code message)
          | Ok _ -> Error "unexpected response to open"
          | Error _ as e -> e)
