(** One supervised session worker: the [init]/[handle] closure pair the
    daemon runs inside a {!Gmf_exec.Persistent} process.

    The worker owns the session's stateful admtrace parser
    ({!Scenario_io.Admtrace.Incremental}) {e and} its
    {!Gmf_admctl.Session}, so flow-id assignment is replayed state: a
    respawned worker re-fed the journal reproduces the same ids,
    transcripts and {!Gmf_admctl.Session.fingerprint} as the
    uninterrupted run.

    Failure discipline: a grammar error that provably left the parser
    untouched returns {!resp.Reject}; anything that may have mutated
    parser or session state out-of-step with the journal (mid-block
    errors, text ending inside an open flow block, exceptions out of
    [Session.apply]) kills the worker instead — the supervisor respawns
    it and replays the journal, which is always sound.  The parser is
    {!Scenario_io.Parse.Admtrace.Incremental.freeze}-frozen right after
    the prologue, so topology directives inside event requests fail
    before mutating parser state and stay on the [Reject] path. *)

type opts = {
  verify : bool;  (** Shadow mode, as [gmfnet session --verify]. *)
  explain : bool;
  cold : bool;  (** Disable warm starts. *)
  survivable : int option;
  throttle_s : float;
      (** Minimum seconds spent per event request — overload-test
          pacing; [0.] in production. *)
  exec_jobs : int;
      (** Executor width for the survivable gate inside the worker. *)
}

val default_opts : opts
(** All features off, [exec_jobs = 1]. *)

type req =
  | Event_text of string
      (** Verbatim admtrace event text.  Normally one event; a batch is
          applied in order and answered with the last outcome. *)
  | Summary
  | Fingerprint

type resp =
  | Outcome of { seq : int; label : string; accepted : bool; text : string }
      (** [text] is the {!Gmf_admctl.Replay.outcome_line} rendering
          (all lines, newline-joined, for a batch). *)
  | Summary_text of string
  | Fingerprint_of of { digest : string; events : int }
  | Reject of string
      (** Grammar error with the parser untouched — the session did not
          change and the worker is still good. *)

type st
(** Worker-side state (parser + session); lives only in the child. *)

val init : opts:opts -> topology:string -> unit -> st
(** Parse the topology prologue and create the session.  Raises
    [Failure] on a prologue that fails the grammar, contains events, or
    ends inside a flow block — surfaced by the supervisor as a worker
    that dies on spawn. *)

val handle : st -> req -> resp
(** Process one request.  Raises (killing the worker, by design) when
    state may have diverged from the journal; see the module comment. *)

val spawn :
  ?on_child:(unit -> unit) ->
  opts:opts ->
  topology:string ->
  unit ->
  (req, resp) Gmf_exec.Persistent.t
(** A supervised worker process over {!init} and {!handle}. *)
