(* Write-ahead event journal: one fsync'd JSONL line per committed
   session event.

   Commit protocol (the daemon's): a request line is appended — and
   fsync'd — after the worker applied it successfully and before the
   decision is sent to the client.  A decision a client has seen is
   therefore always on disk, so a [kill -9] at any point loses at most
   events whose outcome nobody observed; replaying the journal into a
   fresh worker reproduces the session state byte-identically.

   A crash mid-append can leave a torn final line (no trailing
   newline).  [open_] drops it on recovery: a torn line was never
   acknowledged, so dropping it is exactly the no-observed-loss
   guarantee, and truncating the file to the last complete line keeps
   later appends from fusing with the fragment. *)

type t = {
  path : string;
  fd : Unix.file_descr;
  mutable entries : int;
}

let valid_name name =
  name <> ""
  && String.length name <= 128
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       name
  && name.[0] <> '.'

let file ~dir ~session = Filename.concat dir (session ^ ".journal")

let rec mkdirs dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Complete lines of [text] and the byte length of the prefix they
   cover; a trailing fragment without '\n' is excluded from both. *)
let complete_lines text =
  let n = String.length text in
  let rec go acc start =
    match String.index_from_opt text start '\n' with
    | Some i -> go (String.sub text start (i - start) :: acc) (i + 1)
    | None -> (List.rev acc, start)
  in
  let lines, valid_len = go [] 0 in
  ignore n;
  (List.filter (fun l -> l <> "") lines, valid_len)

let load ~dir ~session =
  let path = file ~dir ~session in
  if not (Sys.file_exists path) then []
  else
    let text = In_channel.with_open_bin path In_channel.input_all in
    fst (complete_lines text)

let open_ ~dir ~session =
  if not (valid_name session) then
    invalid_arg (Printf.sprintf "Journal.open_: bad session name %S" session);
  mkdirs dir;
  let path = file ~dir ~session in
  let existing =
    if Sys.file_exists path then
      In_channel.with_open_bin path In_channel.input_all
    else ""
  in
  let lines, valid_len = complete_lines existing in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (* Drop a torn tail before appending anything after it. *)
  if valid_len < String.length existing then Unix.ftruncate fd valid_len;
  ignore (Unix.lseek fd valid_len Unix.SEEK_SET);
  ({ path; fd; entries = List.length lines }, lines)

let append t line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec write_all off =
    if off < len then
      let n = Unix.write_substring t.fd data off (len - off) in
      write_all (off + n)
  in
  write_all 0;
  Unix.fsync t.fd;
  t.entries <- t.entries + 1

let entries t = t.entries
let path t = t.path
let close t = try Unix.close t.fd with _ -> ()
