(* The daemon's session worker: the closure pair a supervised
   [Gmf_exec.Persistent] process runs.

   Each worker owns exactly one admission-control session: one
   [Scenario_io.Admtrace.Incremental] parser (the stateful name/id
   table) and one [Gmf_admctl.Session].  The parser lives in the worker
   — not the daemon — so flow-id assignment is part of the replayed
   state: respawning a worker and re-feeding the journal reproduces the
   same ids, outcomes and fingerprint as the uninterrupted run.

   Failure discipline: a grammar error that provably left the parser
   untouched maps to [Reject] (the daemon answers [parse] and keeps the
   worker); anything that may have mutated parser or session state
   out-of-step with the journal — a mid-block error, text ending inside
   a flow block, an exception out of [Session.apply] — raises instead,
   so the supervisor kills the worker and rebuilds it from the journal.
   Dying is always sound here; limping on with divergent state never
   is.  The "provably untouched" half leans on [Incremental.freeze]:
   the parser is frozen right after the prologue, so a topology
   directive smuggled into an event request errors before reaching the
   name/topology tables instead of mutating them and erroring later. *)

module Jsonl = Scenario_io.Admtrace_jsonl
module Incremental = Scenario_io.Admtrace.Incremental
module Session = Gmf_admctl.Session
module Replay = Gmf_admctl.Replay

type opts = {
  verify : bool;
  explain : bool;
  cold : bool;
  survivable : int option;
  throttle_s : float;
  exec_jobs : int;
}

let default_opts =
  {
    verify = false;
    explain = false;
    cold = false;
    survivable = None;
    throttle_s = 0.;
    exec_jobs = 1;
  }

type req = Event_text of string | Summary | Fingerprint

type resp =
  | Outcome of { seq : int; label : string; accepted : bool; text : string }
  | Summary_text of string
  | Fingerprint_of of { digest : string; events : int }
  | Reject of string

type st = { inc : Incremental.t; session : Session.t; throttle_s : float }

let render_error e = Format.asprintf "%a" Scenario_io.Parse.pp_error e

let init ~opts ~topology () =
  let inc = Incremental.create () in
  (match Incremental.feed_text inc topology with
  | Error e -> failwith (render_error e)
  | Ok (_ :: _) -> failwith "topology prologue contains events"
  | Ok [] ->
      if Incremental.in_flow_block inc then
        failwith "topology prologue ends inside a flow block");
  (* The prologue ends here, even before the first event: a topology
     directive arriving in an event request must fail *before* mutating
     the name/topology tables, or a rejected (hence unjournaled) request
     could leave the worker out of step with the journal and poison
     every future replay. *)
  Incremental.freeze inc;
  let session =
    Session.create ~warm:(not opts.cold) ~shadow:opts.verify
      ~explain:opts.explain ?survivable:opts.survivable
      ~exec:(Gmf_exec.of_jobs opts.exec_jobs)
      ~switches:(Incremental.switches inc)
      ~topo:(Incremental.topology inc) ()
  in
  { inc; session; throttle_s = opts.throttle_s }

(* Like [Incremental.feed_text], but an error also reports the events
   completed earlier in the same text — the caller must know whether the
   parser was mutated before the failure. *)
(* Whether [text] holds anything besides comments and blank lines — the
   only inputs allowed to complete zero events without being an error. *)
let has_directive text =
  String.split_on_char '\n' text
  |> List.exists (fun raw ->
         let code =
           match String.index_opt raw '#' with
           | Some i -> String.sub raw 0 i
           | None -> raw
         in
         String.exists (fun c -> not (c = ' ' || c = '\t' || c = '\r')) code)

let feed_lines inc text =
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        match Incremental.feed inc raw with
        | Ok evs -> go (List.rev_append evs acc) rest
        | Error e -> Error (List.rev acc, e))
  in
  go [] lines

let handle st = function
  | Summary ->
      Summary_text
        (Format.asprintf "%a" Replay.pp_summary (Session.summary st.session))
  | Fingerprint ->
      let s = Session.summary st.session in
      Fingerprint_of
        { digest = Session.fingerprint st.session; events = s.Session.events }
  | Event_text text -> (
      if st.throttle_s > 0. then Unix.sleepf st.throttle_s;
      match feed_lines st.inc text with
      | Error ([], e) when not (Incremental.in_flow_block st.inc) ->
          (* Failed before touching parser state: clean rejection. *)
          Reject (render_error e)
      | Error (_, e) ->
          (* Events already consumed, or a block left open: the parser
             diverged from the journal.  Die; the supervisor replays. *)
          failwith (render_error e)
      | Ok [] ->
          if Incremental.in_flow_block st.inc then
            failwith "request ends inside a flow block (missing 'end')"
          else if has_directive text then
            (* With the prologue frozen every non-comment line either
               completes an event, opens a flow block, or errors — so
               this is unreachable.  If it ever fires the parser state
               is unaccounted for: die and recover from the journal. *)
            failwith "request consumed directives but completed no event"
          else Reject "request text contains no event"
      | Ok events ->
          if Incremental.in_flow_block st.inc then
            failwith "request ends inside a flow block (missing 'end')";
          (* Usually one event per request; a batch is applied in order
             and answered with the last outcome, all lines joined. *)
          let outcomes =
            List.map
              (fun (_line, ev) ->
                Session.apply st.session (Replay.session_event ev))
              events
          in
          let last = List.nth outcomes (List.length outcomes - 1) in
          Outcome
            {
              seq = last.Session.seq;
              label = last.Session.label;
              accepted = last.Session.accepted;
              text =
                String.concat "\n" (List.map Replay.outcome_line outcomes);
            })

let spawn ?on_child ~opts ~topology () =
  Gmf_exec.Persistent.spawn ?on_child ~init:(init ~opts ~topology) ~handle ()
