(* gmfnetd's event loop: a single-threaded [Unix.select] server
   multiplexing client connections (JSONL over a Unix-domain socket)
   and supervised session workers.

   The three robustness pillars live here:

   - supervision: each session's worker is a [Gmf_exec.Persistent]
     process.  A crash, a [handle] exception or a missed per-request
     deadline answers the affected request with an explicit rejection,
     kills the worker, and rebuilds it — paced by exponential backoff —
     by replaying the session journal.  The replayed worker is
     byte-identical to the lost one for every committed event.
   - write-ahead journal: an event is journaled (write + fsync) after
     the worker applied it and before the decision goes out.  Any
     decision a client saw survives [kill -9] of the whole daemon.
   - shedding: per-session request queues are bounded; an arrival over
     the cap is answered ["overloaded"] immediately.  Nothing is
     silently dropped and nothing is admitted without a completed,
     journaled analysis. *)

module Jsonl = Scenario_io.Admtrace_jsonl
module Persistent = Gmf_exec.Persistent
module Backoff = Persistent.Backoff
module Metrics = Gmf_obs.Metrics

type config = {
  socket_path : string;
  journal_dir : string;
  max_sessions : int;
  queue_cap : int;
  deadline_s : float option;
  backoff_base_s : float;
  backoff_max_s : float;
  exec_jobs : int;
}

let default_config =
  {
    socket_path = "gmfnetd.sock";
    journal_dir = "gmfnetd.journal";
    max_sessions = 8;
    queue_cap = 64;
    deadline_s = None;
    backoff_base_s = 0.05;
    backoff_max_s = 5.;
    exec_jobs = 1;
  }

let m_requests = Metrics.counter Metrics.default "daemon.requests"
let m_events = Metrics.counter Metrics.default "daemon.events_committed"
let m_replayed = Metrics.counter Metrics.default "daemon.events_replayed"
let m_shed = Metrics.counter Metrics.default "daemon.shed"
let m_deadline_kills = Metrics.counter Metrics.default "daemon.deadline_kills"
let m_crashes = Metrics.counter Metrics.default "daemon.worker_crashes"
let g_sessions = Metrics.gauge Metrics.default "daemon.sessions"
let g_queue = Metrics.gauge Metrics.default "daemon.queue_depth"

type conn = {
  c_fd : Unix.file_descr;  (* non-blocking *)
  c_buf : Buffer.t;  (* inbound bytes, not yet a full line *)
  mutable c_out : string;  (* outbound bytes the socket would not take *)
  mutable c_out_since : float;
      (* last time a write on [c_out] made progress; meaningless while
         [c_out] is empty *)
  mutable c_sess : sess option;
  mutable c_closed : bool;
      (* no further requests; the fd closes once [c_out] drains *)
}

and pending = {
  p_conn : conn option;  (* None: internal journal replay, no reply *)
  p_req : Worker.req;
  p_line : string option;  (* canonical request line to journal on commit *)
}

and sess = {
  s_name : string;
  s_opts : Worker.opts;
  s_topology : string;
  s_journal : Journal.t;
  mutable s_events : string list;  (* journaled event lines, newest first *)
  mutable s_worker : (Worker.req, Worker.resp) Persistent.t option;
  s_backoff : Backoff.b;
  mutable s_inflight : pending option;
  mutable s_deadline : float option;  (* absolute expiry of s_inflight *)
  s_replay : string Queue.t;  (* journal lines awaiting silent re-apply *)
  s_queue : pending Queue.t;  (* bounded client requests *)
}

type t = {
  cfg : config;
  mutable lfd : Unix.file_descr;
  mutable lfd_open : bool;
  mutable conns : conn list;
  sessions : (string, sess) Hashtbl.t;
  mutable draining : bool;
}

(* ---------------- plumbing ---------------- *)

(* Client sockets are non-blocking.  A response is appended to the
   connection's output buffer and flushed opportunistically here, then
   from the [select] writability set — so a client that stops reading
   (send buffer full) can never stall the event loop, the other
   sessions, deadline enforcement or the SIGTERM drain.  Such a client
   is instead disconnected once its backlog trips [out_cap] or sits
   without progress for [write_timeout_s]. *)

let out_cap = 1 lsl 20
let write_timeout_s = 10.

(* The peer is gone or not worth waiting for: forget its backlog so
   [prune_conns] reaps the fd immediately. *)
let drop_conn conn =
  conn.c_out <- "";
  conn.c_closed <- true

let rec flush_conn conn ~now =
  if conn.c_out <> "" then
    match
      Unix.write_substring conn.c_fd conn.c_out 0 (String.length conn.c_out)
    with
    | 0 -> ()
    | n ->
        conn.c_out <- String.sub conn.c_out n (String.length conn.c_out - n);
        conn.c_out_since <- now;
        flush_conn conn ~now
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn conn ~now
    | exception _ -> drop_conn conn

let respond _t conn resp =
  if not conn.c_closed then begin
    let now = Unix.gettimeofday () in
    if conn.c_out = "" then conn.c_out_since <- now;
    conn.c_out <- conn.c_out ^ Jsonl.encode_response resp ^ "\n";
    flush_conn conn ~now;
    if String.length conn.c_out > out_cap then drop_conn conn
  end

let fail_pending t p ~code ~message =
  match p.p_conn with
  | Some c -> respond t c (Jsonl.Rejected { code; message })
  | None -> ()

(* In a freshly forked worker, drop the daemon's listening socket and
   client connections so clients see EOF as soon as the daemon itself is
   gone, workers notwithstanding. *)
let close_inherited t () =
  if t.lfd_open then (try Unix.close t.lfd with _ -> ());
  List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) t.conns

(* ---------------- workers ---------------- *)

let refill_replay sess =
  Queue.clear sess.s_replay;
  List.iter (fun l -> Queue.add l sess.s_replay) (List.rev sess.s_events)

(* A live worker for [sess], (re)spawning — and queueing a full journal
   replay — when the previous one is gone and the backoff allows a new
   attempt.  [None] while backing off. *)
let ensure_worker t sess ~now =
  match sess.s_worker with
  | Some w when Persistent.alive w -> Some w
  | prev ->
      if not (Backoff.ready sess.s_backoff ~now) then None
      else begin
        let w =
          match prev with
          | Some w ->
              Persistent.respawn w;
              w
          | None ->
              Worker.spawn ~on_child:(close_inherited t) ~opts:sess.s_opts
                ~topology:sess.s_topology ()
        in
        sess.s_worker <- Some w;
        refill_replay sess;
        Some w
      end

(* The worker is gone or untrustworthy: answer the victim request
   explicitly, reap, and let the next [pump] respawn under backoff. *)
let worker_failure t sess ~now ~code ~message =
  Metrics.incr m_crashes;
  (match sess.s_inflight with
  | Some p -> fail_pending t p ~code ~message
  | None -> ());
  sess.s_inflight <- None;
  sess.s_deadline <- None;
  (match sess.s_worker with Some w -> Persistent.kill w | None -> ());
  Backoff.note_failure sess.s_backoff ~now

(* Dispatch the session's next piece of work, journal replays first. *)
let rec pump t sess ~now =
  if
    sess.s_inflight = None
    && not (Queue.is_empty sess.s_replay && Queue.is_empty sess.s_queue)
  then
    match ensure_worker t sess ~now with
    | None -> ()
    | Some w -> (
        let p =
          if not (Queue.is_empty sess.s_replay) then begin
            let line = Queue.pop sess.s_replay in
            match Jsonl.decode_request line with
            | Ok (Jsonl.Event { text }) ->
                Metrics.incr m_replayed;
                Some { p_conn = None; p_req = Worker.Event_text text; p_line = None }
            | _ -> None  (* foreign journal line; skip *)
          end
          else begin
            Metrics.add_gauge g_queue (-1.);
            Some (Queue.pop sess.s_queue)
          end
        in
        match p with
        | None -> pump t sess ~now
        | Some p -> (
            match Persistent.send w p.p_req with
            | Ok () ->
                sess.s_inflight <- Some p;
                (* The per-request deadline is a client-facing latency
                   bound; journal replays ([p_conn = None]) are exempt —
                   deadline-killing a replay that runs colder than the
                   original request would restart the whole replay under
                   backoff, potentially starving recovery forever.  The
                   per-case SIGALRM timeout inside the worker still
                   bounds each replayed analysis. *)
                sess.s_deadline <-
                  (if p.p_conn = None then None
                   else Option.map (fun d -> now +. d) t.cfg.deadline_s)
            | Error e ->
                Metrics.incr m_crashes;
                fail_pending t p ~code:Jsonl.code_crashed
                  ~message:(Gmf_exec.error_to_string e);
                Persistent.kill w;
                Backoff.note_failure sess.s_backoff ~now))

let deliver t sess p (r : Worker.resp) =
  match r with
  | Worker.Outcome o ->
      (* Commit order: fsync the journal line before the decision is
         released — a decision a client observed is always durable. *)
      (match p.p_line with
      | Some line ->
          Journal.append sess.s_journal line;
          sess.s_events <- line :: sess.s_events;
          Metrics.incr m_events
      | None -> ());
      (match p.p_conn with
      | Some c ->
          respond t c
            (Jsonl.Outcome
               {
                 seq = o.seq;
                 label = o.label;
                 accepted = o.accepted;
                 text = o.text;
               })
      | None -> ())
  | Worker.Reject message ->
      fail_pending t p ~code:Jsonl.code_parse ~message
  | Worker.Summary_text text -> (
      match p.p_conn with
      | Some c -> respond t c (Jsonl.Summary_is { text })
      | None -> ())
  | Worker.Fingerprint_of f -> (
      match p.p_conn with
      | Some c ->
          respond t c
            (Jsonl.Fingerprint_is { digest = f.digest; events = f.events })
      | None -> ())

let on_worker_readable t sess ~now =
  match sess.s_worker with
  | None -> ()
  | Some w -> (
      match sess.s_inflight with
      | None ->
          (* Readable with nothing outstanding: the worker died while
             idle (EOF).  Reap; the next pump respawns on demand. *)
          ignore (Persistent.recv w);
          Persistent.kill w
      | Some p ->
          let resp = Persistent.recv w in
          sess.s_inflight <- None;
          sess.s_deadline <- None;
          (match resp with
          | Ok r ->
              Backoff.note_success sess.s_backoff;
              deliver t sess p r
          | Error e ->
              (* Crashed mid-request, or [handle] raised: either way the
                 worker's state may be out of step with the journal.
                 Kill it and rebuild from the journal. *)
              Metrics.incr m_crashes;
              fail_pending t p ~code:Jsonl.code_crashed
                ~message:(Gmf_exec.error_to_string e);
              Persistent.kill w;
              Backoff.note_failure sess.s_backoff ~now);
          pump t sess ~now)

(* ---------------- sessions ---------------- *)

let idle sess =
  sess.s_inflight = None
  && Queue.is_empty sess.s_replay
  && Queue.is_empty sess.s_queue

let attached t sess =
  List.exists
    (fun c ->
      (not c.c_closed)
      && match c.c_sess with Some s -> s == sess | None -> false)
    t.conns

let drop_session t sess =
  (match sess.s_worker with Some w -> Persistent.stop w | None -> ());
  Journal.close sess.s_journal;
  Hashtbl.remove t.sessions sess.s_name;
  Metrics.set_gauge g_sessions (float_of_int (Hashtbl.length t.sessions))

(* Evict one idle, unattached session to make room; its journal stays on
   disk, so a later [open] recovers it in full. *)
let evict_idle t =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with
        | Some _ -> acc
        | None -> if idle s && not (attached t s) then Some s else None)
      t.sessions None
  in
  match victim with
  | None -> false
  | Some s ->
      drop_session t s;
      true

let opts_of_open ~exec_jobs ~verify ~explain ~cold ~survivable ~throttle_s =
  { Worker.verify; explain; cold; survivable; throttle_s; exec_jobs }

let handle_open t conn ~now ~session ~topology ~verify ~explain ~cold
    ~survivable ~throttle_s =
  if t.draining then
    respond t conn
      (Jsonl.Rejected
         { code = Jsonl.code_shutdown; message = "daemon is draining" })
  else if not (Journal.valid_name session) then
    respond t conn
      (Jsonl.Rejected
         {
           code = Jsonl.code_proto;
           message =
             Printf.sprintf "bad session name %S (want [A-Za-z0-9._-]+)"
               session;
         })
  else
    match Hashtbl.find_opt t.sessions session with
    | Some sess ->
        (* Re-attach to the live session. *)
        conn.c_sess <- Some sess;
        respond t conn
          (Jsonl.Opened { session; replayed = List.length sess.s_events })
    | None ->
        if
          Hashtbl.length t.sessions >= t.cfg.max_sessions
          && not (evict_idle t)
        then
          respond t conn
            (Jsonl.Rejected
               {
                 code = Jsonl.code_overloaded;
                 message =
                   Printf.sprintf "session table full (%d live)"
                     (Hashtbl.length t.sessions);
               })
        else begin
          (* Validate the prologue parent-side so a bad open fails fast
             instead of as a crash-looping worker. *)
          let probe = Scenario_io.Admtrace.Incremental.create () in
          let prologue_error =
            match Scenario_io.Admtrace.Incremental.feed_text probe topology with
            | Error e ->
                Some (Format.asprintf "%a" Scenario_io.Parse.pp_error e)
            | Ok (_ :: _) -> Some "topology prologue contains events"
            | Ok [] ->
                if Scenario_io.Admtrace.Incremental.in_flow_block probe then
                  Some "topology prologue ends inside a flow block"
                else None
          in
          match prologue_error with
          | Some message ->
              respond t conn
                (Jsonl.Rejected { code = Jsonl.code_parse; message })
          | None ->
              let journal, recovered =
                Journal.open_ ~dir:t.cfg.journal_dir ~session
              in
              let opts =
                opts_of_open ~exec_jobs:t.cfg.exec_jobs ~verify ~explain ~cold
                  ~survivable ~throttle_s
              in
              (* Recovery is authoritative: an existing journal's open
                 line defines topology and options, so replay rebuilds
                 the original session even if this re-open drifted. *)
              let opts, topology, event_lines =
                match recovered with
                | [] ->
                    Journal.append journal
                      (Jsonl.encode_request
                         (Jsonl.Open
                            {
                              session;
                              topology;
                              verify;
                              explain;
                              cold;
                              survivable;
                              throttle_s;
                            }));
                    (opts, topology, [])
                | first :: rest -> (
                    match Jsonl.decode_request first with
                    | Ok
                        (Jsonl.Open
                          {
                            topology = topo0;
                            verify = v0;
                            explain = e0;
                            cold = c0;
                            survivable = k0;
                            throttle_s = th0;
                            _;
                          }) ->
                        ( opts_of_open ~exec_jobs:t.cfg.exec_jobs ~verify:v0
                            ~explain:e0 ~cold:c0 ~survivable:k0 ~throttle_s:th0,
                          topo0,
                          rest )
                    | _ -> (opts, topology, rest))
              in
              let sess =
                {
                  s_name = session;
                  s_opts = opts;
                  s_topology = topology;
                  s_journal = journal;
                  s_events = List.rev event_lines;
                  s_worker = None;
                  s_backoff =
                    Backoff.create ~base_s:t.cfg.backoff_base_s
                      ~max_s:t.cfg.backoff_max_s ();
                  s_inflight = None;
                  s_deadline = None;
                  s_replay = Queue.create ();
                  s_queue = Queue.create ();
                }
              in
              Hashtbl.replace t.sessions session sess;
              Metrics.set_gauge g_sessions
                (float_of_int (Hashtbl.length t.sessions));
              conn.c_sess <- Some sess;
              respond t conn
                (Jsonl.Opened { session; replayed = List.length event_lines });
              (* Start the recovery replay right away. *)
              pump t sess ~now
        end

let enqueue t conn ~now p =
  match conn.c_sess with
  | None ->
      respond t conn
        (Jsonl.Rejected
           {
             code = Jsonl.code_proto;
             message = "no session open on this connection";
           })
  | Some sess ->
      if t.draining then
        respond t conn
          (Jsonl.Rejected
             { code = Jsonl.code_shutdown; message = "daemon is draining" })
      else if Queue.length sess.s_queue >= t.cfg.queue_cap then begin
        (* Bounded queue: shed loudly, never drop silently. *)
        Metrics.incr m_shed;
        respond t conn
          (Jsonl.Rejected
             {
               code = Jsonl.code_overloaded;
               message =
                 Printf.sprintf "session %S queue full (%d pending)"
                   sess.s_name (Queue.length sess.s_queue);
             })
      end
      else begin
        Queue.add p sess.s_queue;
        Metrics.add_gauge g_queue 1.;
        pump t sess ~now
      end

let handle_request t conn line ~now =
  Metrics.incr m_requests;
  match Jsonl.decode_request line with
  | Error message ->
      respond t conn (Jsonl.Rejected { code = Jsonl.code_proto; message })
  | Ok Jsonl.Ping -> respond t conn Jsonl.Pong
  | Ok Jsonl.Close ->
      respond t conn Jsonl.Closed;
      conn.c_closed <- true
  | Ok
      (Jsonl.Open
        { session; topology; verify; explain; cold; survivable; throttle_s })
    ->
      handle_open t conn ~now ~session ~topology ~verify ~explain ~cold
        ~survivable ~throttle_s
  | Ok (Jsonl.Event { text } as req) ->
      enqueue t conn ~now
        {
          p_conn = Some conn;
          p_req = Worker.Event_text text;
          p_line = Some (Jsonl.encode_request req);
        }
  | Ok Jsonl.Summary ->
      enqueue t conn ~now
        { p_conn = Some conn; p_req = Worker.Summary; p_line = None }
  | Ok Jsonl.Fingerprint ->
      enqueue t conn ~now
        { p_conn = Some conn; p_req = Worker.Fingerprint; p_line = None }

(* ---------------- connection reads ---------------- *)

let process_lines t conn ~now =
  let rec go () =
    if not conn.c_closed then begin
      let s = Buffer.contents conn.c_buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear conn.c_buf;
          Buffer.add_substring conn.c_buf s (i + 1) (String.length s - i - 1);
          let line = String.trim line in
          if line <> "" then handle_request t conn line ~now;
          go ()
    end
  in
  go ()

let on_conn_readable t conn ~now =
  let bytes = Bytes.create 4096 in
  match Unix.read conn.c_fd bytes 0 (Bytes.length bytes) with
  | 0 -> drop_conn conn
  | n ->
      Buffer.add_subbytes conn.c_buf bytes 0 n;
      process_lines t conn ~now
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  | exception _ -> drop_conn conn

(* ---------------- main loop ---------------- *)

let stop_requested = ref false

let all_idle t = Hashtbl.fold (fun _ s acc -> acc && idle s) t.sessions true

(* A closed connection's fd lingers until its output buffer drains, so
   a [close] request's [closed] response still reaches the client. *)
let prune_conns t =
  let closed, open_ =
    List.partition (fun c -> c.c_closed && c.c_out = "") t.conns
  in
  List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) closed;
  t.conns <- open_

let all_flushed t = List.for_all (fun c -> c.c_out = "") t.conns

let rec loop t =
  if !stop_requested && not t.draining then begin
    (* Graceful drain: stop accepting, finish queued work, then exit. *)
    t.draining <- true;
    if t.lfd_open then begin
      (try Unix.close t.lfd with _ -> ());
      t.lfd_open <- false
    end
  end;
  prune_conns t;
  if t.draining && all_idle t && all_flushed t then ()
  else begin
    let now = Unix.gettimeofday () in
    (* Expired per-request deadlines: kill, answer, backoff-respawn. *)
    Hashtbl.iter
      (fun _ sess ->
        match sess.s_deadline with
        | Some d when now >= d ->
            Metrics.incr m_deadline_kills;
            worker_failure t sess ~now ~code:Jsonl.code_deadline
              ~message:"per-request deadline expired"
        | _ -> ())
      t.sessions;
    (* Clients whose reads stalled long enough that their backlog made
       no progress: disconnect them rather than hold their output (and,
       during a drain, the daemon's exit) hostage. *)
    List.iter
      (fun c ->
        if c.c_out <> "" && now -. c.c_out_since > write_timeout_s then
          drop_conn c)
      t.conns;
    (* Dispatch anything dispatchable (also retries expired backoffs). *)
    Hashtbl.iter (fun _ sess -> pump t sess ~now) t.sessions;
    let rfds = ref [] in
    if t.lfd_open then rfds := t.lfd :: !rfds;
    List.iter (fun c -> if not c.c_closed then rfds := c.c_fd :: !rfds) t.conns;
    let wfds =
      List.filter_map
        (fun c -> if c.c_out <> "" then Some c.c_fd else None)
        t.conns
    in
    let worker_fds = ref [] in
    Hashtbl.iter
      (fun _ sess ->
        match sess.s_worker with
        | Some w when Persistent.alive w -> (
            match Persistent.fd w with
            | Some fd ->
                rfds := fd :: !rfds;
                worker_fds := (fd, sess) :: !worker_fds
            | None -> ())
        | _ -> ())
      t.sessions;
    (* Sleep until the nearest deadline / backoff retry, 0.5s at most so
       signal flags are polled promptly. *)
    let timeout = ref 0.5 in
    let shrink v = if v < !timeout then timeout := max 0.01 v in
    Hashtbl.iter
      (fun _ sess ->
        (match sess.s_deadline with
        | Some d -> shrink (d -. now)
        | None -> ());
        if sess.s_inflight = None && not (idle sess) then
          (* Work waiting on a backoff window. *)
          shrink (Backoff.next_try sess.s_backoff -. now))
      t.sessions;
    match Unix.select !rfds wfds [] !timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop t
    | ready, writable, _ ->
        let now = Unix.gettimeofday () in
        List.iter
          (fun fd ->
            match List.find_opt (fun c -> c.c_fd = fd) t.conns with
            | Some c -> flush_conn c ~now
            | None -> ())
          writable;
        List.iter
          (fun fd ->
            if t.lfd_open && fd = t.lfd then begin
              match Unix.accept t.lfd with
              | cfd, _ ->
                  Unix.set_nonblock cfd;
                  t.conns <-
                    {
                      c_fd = cfd;
                      c_buf = Buffer.create 256;
                      c_out = "";
                      c_out_since = 0.;
                      c_sess = None;
                      c_closed = false;
                    }
                    :: t.conns
              | exception _ -> ()
            end
            else
              match List.assoc_opt fd !worker_fds with
              | Some sess -> on_worker_readable t sess ~now
              | None -> (
                  match
                    List.find_opt (fun c -> c.c_fd = fd && not c.c_closed)
                      t.conns
                  with
                  | Some c -> on_conn_readable t c ~now
                  | None -> ()))
          ready;
        loop t
  end

let shutdown t =
  Hashtbl.iter
    (fun _ sess ->
      (match sess.s_inflight with
      | Some p ->
          fail_pending t p ~code:Jsonl.code_shutdown ~message:"daemon exiting"
      | None -> ());
      Queue.iter
        (fun p ->
          fail_pending t p ~code:Jsonl.code_shutdown ~message:"daemon exiting")
        sess.s_queue;
      Queue.clear sess.s_queue;
      (match sess.s_worker with Some w -> Persistent.stop w | None -> ());
      Journal.close sess.s_journal)
    t.sessions;
  Hashtbl.reset t.sessions;
  (* One best-effort flush so goodbye responses reach clients that are
     keeping up; anything the sockets will not take right now is lost. *)
  let now = Unix.gettimeofday () in
  List.iter (fun c -> flush_conn c ~now) t.conns;
  List.iter (fun c -> try Unix.close c.c_fd with _ -> ()) t.conns;
  t.conns <- [];
  if t.lfd_open then begin
    (try Unix.close t.lfd with _ -> ());
    t.lfd_open <- false
  end;
  try Unix.unlink t.cfg.socket_path with _ -> ()

let check_config cfg =
  if cfg.max_sessions < 1 then invalid_arg "Server.run: max_sessions < 1";
  if cfg.queue_cap < 1 then invalid_arg "Server.run: queue_cap < 1";
  (match cfg.deadline_s with
  | Some d when d <= 0. -> invalid_arg "Server.run: deadline_s <= 0"
  | _ -> ());
  if cfg.socket_path = "" then invalid_arg "Server.run: empty socket_path"

let run ?(on_ready = fun () -> ()) cfg =
  check_config cfg;
  stop_requested := false;
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let stopper = Sys.Signal_handle (fun _ -> stop_requested := true) in
  let prev_term = Sys.signal Sys.sigterm stopper in
  let prev_int = Sys.signal Sys.sigint stopper in
  (try Unix.unlink cfg.socket_path with _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t =
    {
      cfg;
      lfd;
      lfd_open = true;
      conns = [];
      sessions = Hashtbl.create 8;
      draining = false;
    }
  in
  let finally () =
    shutdown t;
    Sys.set_signal Sys.sigpipe prev_pipe;
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int
  in
  Fun.protect ~finally (fun () ->
      Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen lfd 16;
      on_ready ();
      loop t)
