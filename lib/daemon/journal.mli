(** Write-ahead event journal backing one daemon session.

    One file per session ([<dir>/<session>.journal]), holding one
    canonically-encoded {!Scenario_io.Admtrace_jsonl} request per line:
    the session's [open] request first, then every {e committed} event
    request in application order.  Lines are appended with
    write+[fsync] {e after} the session worker applied the event and
    {e before} the decision is released to the client, so any decision a
    client observed is durable: after a [kill -9], replaying the journal
    into a fresh worker reconstructs the session state byte-identically
    (same flow ids, same counters, same {!Gmf_admctl.Session.fingerprint}).

    A crash mid-append leaves a torn final line (no trailing newline);
    recovery drops it — by the ordering above its outcome was never
    observed — and truncates the file so later appends cannot fuse with
    the fragment. *)

type t

val valid_name : string -> bool
(** Accepted session names: non-empty, at most 128 chars, drawn from
    [A-Za-z0-9._-], not starting with ['.'] — names double as file
    names, so nothing that could escape [dir] or hide the file. *)

val open_ : dir:string -> session:string -> t * string list
(** Open (creating [dir] and the file as needed) the journal for
    [session] in append mode and return it together with the recovered
    complete lines, oldest first — empty for a brand-new session.  A
    torn trailing fragment is dropped and truncated away.  Raises
    [Invalid_argument] when {!valid_name} rejects [session]; [Unix]
    errors escape. *)

val load : dir:string -> session:string -> string list
(** The journal's complete lines without opening it for append (a torn
    tail is dropped but {e not} truncated).  [[]] when the file does not
    exist.  Read-only inspection — tests and tooling. *)

val append : t -> string -> unit
(** Append one line (the terminating newline is added) and [fsync].
    Returns only once the line is durable. *)

val entries : t -> int
(** Complete lines in the journal: recovered lines plus appends. *)

val path : t -> string

val close : t -> unit
(** Close the file descriptor; idempotent. *)
