open Gmf_util

(* The paper's per-frame analysis assumes every busy period begins with a
   release of the analyzed frame k itself (eqs 16/23/30 charge only whole
   prior cycles, q * CSUM).  That is unsound when earlier frames of the
   same flow can still be in service at frame k's release — e.g. the
   Figure 3 stream on a 10 Mbit/s link, where the I+P packet's 36.6 ms
   transmission exceeds its 30 ms period, so the following B packet always
   queues behind it (observed by the simulator, experiment E18).

   Repair R8 (DESIGN.md): under [Config.Repaired] the scan below maximizes
   over busy periods starting [l] own frames before frame k
   (l = 0..n_i - 1); the own-work charge grows by the l predecessors'
   demand while the subtraction in [finish] grows only by their minimum
   separations.  [Config.Faithful] keeps the paper's l = 0. *)

let window_before arr ~k ~len =
  let n = Array.length arr in
  let rec go i acc =
    if i >= len then acc
    else go (i + 1) (acc + arr.((((k - 1 - i) mod n) + n) mod n))
  in
  go 0 0

(* Per-stage-kind convergence histograms: the profile subcommand reports
   where fixpoint iterations are spent across the three stage analyses. *)
let iters_first_link =
  Gmf_obs.Metrics.histogram Gmf_obs.Metrics.default "fixpoint.iters.first_link"

let iters_ingress =
  Gmf_obs.Metrics.histogram Gmf_obs.Metrics.default "fixpoint.iters.ingress"

let iters_egress =
  Gmf_obs.Metrics.histogram Gmf_obs.Metrics.default "fixpoint.iters.egress"

let iters_hist = function
  | Stage.First_link _ -> iters_first_link
  | Stage.Ingress _ -> iters_ingress
  | Stage.Egress _ -> iters_egress

let run ~ctx ~stage ~flow ~frame ~busy_seed ~busy_step ~w_base ~w_step ~finish
    =
  let cfg = Ctx.config ctx in
  let fail reason =
    Error
      {
        Result_types.flow_id = flow.Traffic.Flow.id;
        frame;
        failed_stage = Some stage;
        reason;
      }
  in
  let stage_iters = iters_hist stage in
  let fixed ~f ~seed =
    let outcome =
      Fixpoint.iterate ~f ~seed ~max_iters:cfg.Config.max_busy_iters
        ~horizon:cfg.Config.horizon
    in
    (match outcome with
    | Fixpoint.Converged { iters; _ } ->
        Gmf_obs.Metrics.observe stage_iters iters
    | Fixpoint.Diverged _ -> ());
    outcome
  in
  match fixed ~f:busy_step ~seed:busy_seed with
  | Fixpoint.Diverged msg -> fail ("busy period: " ^ msg)
  | Fixpoint.Converged { value = busy_len; _ } -> begin
      let tsum = Traffic.Flow.tsum flow in
      let q_count = max 1 (Timeunit.cdiv busy_len tsum) in
      let l_count =
        match cfg.Config.variant with
        | Config.Faithful -> 1
        | Config.Repaired -> Traffic.Flow.n flow
      in
      if q_count > cfg.Config.max_q then
        fail
          (Printf.sprintf "Q=%d exceeds the configured cap %d" q_count
             cfg.Config.max_q)
      else begin
        (* Scan every candidate busy-period shape: q whole own cycles plus
           l own predecessor frames ahead of the analyzed instance.  The
           stage bound is the worst response among them; the winning shape
           (q, l) and its converged window w are kept as a witness so the
           explain layer can re-derive every term of the bound. *)
        let rec scan q l best =
          if q >= q_count then
            let best_r, w_q, w_l, w_last = best in
            Ok
              {
                Result_types.stage;
                response = best_r;
                busy_len;
                q_count;
                w_q;
                w_l;
                w_last;
              }
          else if l >= l_count then scan (q + 1) 0 best
          else
            match fixed ~f:(w_step ~q ~l) ~seed:(w_base ~q ~l) with
            | Fixpoint.Diverged msg ->
                fail (Printf.sprintf "w(q=%d,l=%d): %s" q l msg)
            | Fixpoint.Converged { value = w; _ } ->
                let r = finish ~q ~l ~w in
                let best_r, _, _, _ = best in
                scan q (l + 1) (if r > best_r then (r, q, l, w) else best)
        in
        scan 0 0 (min_int, 0, 0, 0)
      end
    end
