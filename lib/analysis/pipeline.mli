(** End-to-end pipeline analysis of one flow (paper Figure 6).

    For every GMF frame [k] the stages of the route are analyzed in order,
    accumulating two sums initialized to the source jitter GJ_i^k:
    [RSUM] (the end-to-end response-time bound) and [JSUM] (the generalized
    jitter handed to the next stage).  Before each stage is analyzed, the
    frame's jitter at that stage is recorded in the context's jitter state
    so other flows see it in subsequent (or later-in-round) analyses — this
    is the coupling the holistic iteration (Section 3.5) closes.

    The paper's Figure 6 skips the first-hop analysis for a route whose
    second node is already the destination; we analyze it (repair R5).

    Under [Config.tight_jitter] the jitter handed forward grows only by the
    stage's response-time variability (R − R_min) rather than the full R;
    the end-to-end bound itself still sums the full stage responses. *)

val stage_min_response :
  Ctx.t -> Traffic.Flow.t -> frame:int -> Stage.t -> Gmf_util.Timeunit.ns
(** Lower bound on the frame's response at the stage: its own transmission
    plus propagation (link stages) or its own task rotations (ingress).
    This is the floor the tight-jitter rule subtracts; the explain layer
    reports it as the hop's uncontended minimum. *)

val analyze_frame :
  Ctx.t ->
  flow:Traffic.Flow.t ->
  frame:int ->
  (Result_types.frame_result, Result_types.failure) result
(** Bound for one GMF frame.  Raises [Invalid_argument] on a bad index. *)

val analyze_flow :
  Ctx.t ->
  flow:Traffic.Flow.t ->
  (Result_types.flow_result, Result_types.failure) result
(** Bounds for every frame of the flow (frame 0 first).  Stops at the first
    failing frame.

    Before any fixpoint runs, the [Gmf_lint.Rules.flow_gate] pre-pass
    checks the utilization impossibility conditions ([GMF201]/[GMF203])
    on the flow's route; a violated condition fails immediately with the
    rendered diagnostic as the reason — the recurrences would only have
    diverged against a cap. *)
