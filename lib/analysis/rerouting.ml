type decision = {
  admitted : bool;
  route : Network.Route.t option;
  attempts : int;
  report : Holistic.report;
}

let with_route flow route =
  Traffic.Flow.make ~id:flow.Traffic.Flow.id ~name:flow.Traffic.Flow.name
    ~spec:flow.Traffic.Flow.spec ~encap:flow.Traffic.Flow.encap ~route
    ~priority:flow.Traffic.Flow.priority
(* Remarks are dropped deliberately: they name hops of the old route. *)

let route_avoids ?(avoid_links = []) ?(avoid_nodes = []) route =
  List.for_all (fun hop -> not (List.mem hop avoid_links))
    (Network.Route.hops route)
  && List.for_all
       (fun n -> not (List.mem n avoid_nodes))
       (Network.Route.nodes route)

let candidate_routes ?(max_routes = 4) ?avoid_links ?avoid_nodes topo flow =
  let own = flow.Traffic.Flow.route in
  let alternatives =
    Network.Pathfind.k_shortest ~k:max_routes ?avoid_links ?avoid_nodes topo
      ~src:(Network.Route.source own)
      ~dst:(Network.Route.destination own)
    |> List.filter (fun r ->
           Network.Route.nodes r <> Network.Route.nodes own)
  in
  if route_avoids ?avoid_links ?avoid_nodes own then own :: alternatives
  else alternatives

let try_routes ?config ~base_flows ~topo ~switches flow routes =
  let rec go attempts last_report = function
    | [] -> (None, attempts, last_report)
    | route :: rest -> begin
        let attempt = with_route flow route in
        let scenario =
          Traffic.Scenario.make ~switches ~topo
            ~flows:(base_flows @ [ attempt ]) ()
        in
        let report = Holistic.analyze ?config scenario in
        if Holistic.is_schedulable report then
          (Some route, attempts + 1, Some report)
        else go (attempts + 1) (Some report) rest
      end
  in
  go 0 None routes

let switch_models scenario =
  Traffic.Scenario.switch_nodes scenario
  |> List.map (fun n -> (n, Traffic.Scenario.switch_model scenario n))

let admit ?config ?max_routes ?avoid_links ?avoid_nodes scenario ~candidate =
  let topo = Traffic.Scenario.topo scenario in
  let routes =
    candidate_routes ?max_routes ?avoid_links ?avoid_nodes topo candidate
  in
  let accepted, attempts, report =
    try_routes ?config
      ~base_flows:(Traffic.Scenario.flows scenario)
      ~topo
      ~switches:(switch_models scenario)
      candidate routes
  in
  let report =
    match report with
    | Some r -> r
    | None -> Holistic.analyze ?config scenario
  in
  { admitted = accepted <> None; route = accepted; attempts; report }

let admit_greedily ?config ?max_routes ~topo ~switches candidates =
  let rec go accepted rejected = function
    | [] -> (List.rev accepted, List.rev rejected)
    | candidate :: rest -> begin
        let routes = candidate_routes ?max_routes topo candidate in
        let found, _, _ =
          try_routes ?config ~base_flows:(List.rev accepted) ~topo ~switches
            candidate routes
        in
        match found with
        | Some route ->
            go (with_route candidate route :: accepted) rejected rest
        | None -> go accepted (candidate :: rejected) rest
      end
  in
  go [] [] candidates
