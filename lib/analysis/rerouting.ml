type decision = {
  admitted : bool;
  route : Network.Route.t option;
  attempts : int;
  report : Holistic.report;
}

let with_route flow route =
  Traffic.Flow.make ~id:flow.Traffic.Flow.id ~name:flow.Traffic.Flow.name
    ~spec:flow.Traffic.Flow.spec ~encap:flow.Traffic.Flow.encap ~route
    ~priority:flow.Traffic.Flow.priority
(* Remarks are dropped deliberately: they name hops of the old route. *)

let route_avoids ?(avoid_links = []) ?(avoid_nodes = []) route =
  List.for_all (fun hop -> not (List.mem hop avoid_links))
    (Network.Route.hops route)
  && List.for_all
       (fun n -> not (List.mem n avoid_nodes))
       (Network.Route.nodes route)

let candidate_routes ?(max_routes = 4) ?avoid_links ?avoid_nodes topo flow =
  let own = flow.Traffic.Flow.route in
  let alternatives =
    Network.Pathfind.k_shortest ~k:max_routes ?avoid_links ?avoid_nodes topo
      ~src:(Network.Route.source own)
      ~dst:(Network.Route.destination own)
    |> List.filter (fun r ->
           Network.Route.nodes r <> Network.Route.nodes own)
  in
  if route_avoids ?avoid_links ?avoid_nodes own then own :: alternatives
  else alternatives

(* First-match search over candidate routes, through the case layer:
   deterministic first (lowest-index) schedulable route under every
   backend, with sequential-equivalent attempt counting. *)
let try_routes ?exec ?config ~base_flows ~topo ~switches flow routes =
  let scenario_of route =
    Traffic.Scenario.make ~switches ~topo
      ~flows:(base_flows @ [ with_route flow route ])
      ()
  in
  let search =
    Case.search_schedulable ?exec ?config (List.map scenario_of routes)
  in
  match search.Case.found with
  | Some (i, report) -> (Some (List.nth routes i), i + 1, Some report)
  | None -> (None, search.Case.evaluated, search.Case.last)

let switch_models scenario =
  Traffic.Scenario.switch_nodes scenario
  |> List.map (fun n -> (n, Traffic.Scenario.switch_model scenario n))

let admit ?exec ?config ?max_routes ?avoid_links ?avoid_nodes scenario
    ~candidate =
  let topo = Traffic.Scenario.topo scenario in
  let routes =
    candidate_routes ?max_routes ?avoid_links ?avoid_nodes topo candidate
  in
  let accepted, attempts, report =
    try_routes ?exec ?config
      ~base_flows:(Traffic.Scenario.flows scenario)
      ~topo
      ~switches:(switch_models scenario)
      candidate routes
  in
  let report =
    match report with
    | Some r -> r
    | None -> Holistic.analyze ?config scenario
  in
  { admitted = accepted <> None; route = accepted; attempts; report }

let admit_greedily ?exec ?config ?max_routes ~topo ~switches candidates =
  let rec go accepted rejected = function
    | [] -> (List.rev accepted, List.rev rejected)
    | candidate :: rest -> begin
        let routes = candidate_routes ?max_routes topo candidate in
        let found, _, _ =
          try_routes ?exec ?config ~base_flows:(List.rev accepted) ~topo
            ~switches candidate routes
        in
        match found with
        | Some route ->
            go (with_route candidate route :: accepted) rejected rest
        | None -> go accepted (candidate :: rejected) rest
      end
  in
  go [] [] candidates
