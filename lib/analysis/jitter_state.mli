(** Per-(flow, frame, stage) generalized-jitter bookkeeping for the holistic
    iteration (paper Section 3.5).

    GJ_i^{k,stage} is the generalized jitter of frame [k] of flow [i] when
    it reaches [stage].  The pipeline algorithm (Figure 6) writes these as
    it accumulates response times; the analysis of any other flow then reads
    the per-flow maximum as its [extra] term. *)

type t

val create : unit -> t

val get : t -> flow:Traffic.Flow.id -> stage:Stage.t -> frame:int ->
  Gmf_util.Timeunit.ns
(** Jitter of one frame at one stage; 0 until set. *)

val set : t -> flow:Traffic.Flow.id -> stage:Stage.t -> frame:int ->
  Gmf_util.Timeunit.ns -> unit
(** Raises [Invalid_argument] on a negative value or frame index. *)

val extra : t -> flow:Traffic.Flow.id -> n_frames:int -> stage:Stage.t ->
  Gmf_util.Timeunit.ns
(** extra_j of Section 3.2: max over the flow's [n_frames] frames of the
    jitter at [stage]. *)

val copy : t -> t
(** Deep copy, for round-over-round comparison. *)

val filter_flows : t -> keep:(Traffic.Flow.id -> bool) -> t
(** [filter_flows t ~keep] is a fresh state holding exactly the entries of
    the flows [keep] accepts — the partial-invalidation step of a
    warm-started admission session: entries of flows whose fixpoint may
    have changed are dropped (they restart from source jitters), the rest
    carry their converged values over. *)

val union : t -> t -> t
(** [union a b] is a fresh state holding the entries of both; on a shared
    key the entry of [b] wins.  The incremental engine ({!Delta}) merges
    the carried-over entries of untouched flows with the re-converged
    entries of the edit's interference closure this way — the two sides
    are disjoint by construction there. *)

val equal : t -> t -> bool
(** True when both states hold exactly the same values (treating unset
    entries as 0). *)

val max_value : t -> Gmf_util.Timeunit.ns
(** Largest jitter recorded anywhere (0 when empty) — used for divergence
    detection. *)

val max_delta : t -> t -> Gmf_util.Timeunit.ns
(** Largest absolute per-entry difference between two states (treating
    unset entries as 0); 0 iff {!equal}.  Feeds the holistic convergence
    telemetry: the per-round jitter delta. *)

val flow_deltas : t -> t -> (Traffic.Flow.id * Gmf_util.Timeunit.ns) list
(** Per-flow largest absolute entry difference between two states, sorted
    by flow id.  Every flow with an entry in either state appears (delta 0
    when its entries agree) — the per-round "which flows are still moving"
    record behind {!Gmf_explain.Convergence}. *)
