(* Incremental re-analysis against a converged base fixpoint: diff the
   flow sets, close the edit under interference (routes sharing a node),
   fixpoint only the closure, carry everything else over.  See delta.mli
   for the soundness argument; docs/DELTA.md spells it out in full. *)

type base = {
  b_config : Config.t;
  b_scenario : Traffic.Scenario.t;
  b_state : Jitter_state.t;
  b_report : Holistic.report;
  b_ok : bool;
  b_lint_clean : bool;
}

type stats = {
  total_flows : int;
  closure_flows : int;
  skipped_flows : int;
  rounds : int;
  rounds_saved : int;
  cold_fallback : bool;
  warm_seeded : bool;
}

type result = {
  d_report : Holistic.report;
  d_state : Jitter_state.t;
  d_untouched : Traffic.Flow.id list;
  d_stats : stats;
}

let m_runs = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "delta.runs"

let m_closure =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "delta.closure_flows"

let m_skipped =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "delta.flows_skipped"

let m_saved =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "delta.rounds_saved"

let m_fallbacks =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "delta.cold_fallbacks"

let converged_verdict = function
  | Holistic.Schedulable | Holistic.Deadline_miss _ -> true
  | Holistic.Analysis_failed _ | Holistic.No_fixed_point _ -> false

let make_base ?(lint_clean = true) ~config ~scenario ~state ~report () =
  {
    b_config = config;
    b_scenario = scenario;
    b_state = state;
    b_report = report;
    b_ok = converged_verdict report.Holistic.verdict;
    b_lint_clean = lint_clean;
  }

let compute_base ?(config = Config.default) scenario =
  let ctx = Ctx.create ~config scenario in
  let report = Holistic.run ctx in
  let lint_clean =
    Gmf_lint.Lint.errors (Gmf_lint.Lint.run ~config scenario) = []
  in
  {
    b_config = config;
    b_scenario = scenario;
    b_state = Ctx.snapshot ctx;
    b_report = report;
    b_ok = converged_verdict report.Holistic.verdict;
    b_lint_clean = lint_clean;
  }

let base_report b = b.b_report
let base_state b = b.b_state
let base_ok b = b.b_ok
let base_digest b = Case.digest ~config:b.b_config b.b_scenario

(* ------------------------------------------------------------------ *)
(* Structure comparison and flow diff                                  *)
(* ------------------------------------------------------------------ *)

(* The comparison only holds when everything outside the flow sets is
   identical: topology (nodes and links), config (shared by
   construction) and the models of every switch both scenarios know.  A
   switch only one side models serves only routes of added/removed/
   changed flows — those are closure seeds anyway. *)
let same_structure b target =
  let bt = Traffic.Scenario.topo b.b_scenario
  and tt = Traffic.Scenario.topo target in
  (bt == tt
  || Network.Topology.nodes bt = Network.Topology.nodes tt
     && Network.Topology.links bt = Network.Topology.links tt)
  && List.for_all
       (fun n ->
         match Traffic.Scenario.switch_model b.b_scenario n with
         | bm -> bm = Traffic.Scenario.switch_model target n
         | exception Invalid_argument _ -> true)
       (List.filter
          (fun n -> List.mem n (Traffic.Scenario.switch_nodes b.b_scenario))
          (Traffic.Scenario.switch_nodes target))

(* Added/removed/changed (old, new) between the base and target flow
   sets, by id.  Physical equality short-circuits the canonical
   serialization — the common case, since drivers reuse the unchanged
   flow records. *)
let diff_flows base_flows target_flows =
  let btbl = Hashtbl.create 64 and ttbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Traffic.Flow.t) -> Hashtbl.replace btbl f.Traffic.Flow.id f)
    base_flows;
  List.iter
    (fun (f : Traffic.Flow.t) -> Hashtbl.replace ttbl f.Traffic.Flow.id f)
    target_flows;
  let added =
    List.filter
      (fun (f : Traffic.Flow.t) -> not (Hashtbl.mem btbl f.Traffic.Flow.id))
      target_flows
  in
  let removed =
    List.filter
      (fun (f : Traffic.Flow.t) -> not (Hashtbl.mem ttbl f.Traffic.Flow.id))
      base_flows
  in
  let changed =
    List.filter_map
      (fun (nw : Traffic.Flow.t) ->
        match Hashtbl.find_opt btbl nw.Traffic.Flow.id with
        | Some old when old != nw && Case.flow_digest old <> Case.flow_digest nw
          ->
            Some (old, nw)
        | _ -> None)
      target_flows
  in
  (added, removed, changed)

(* ------------------------------------------------------------------ *)
(* Interference closure (node-sharing BFS)                             *)
(* ------------------------------------------------------------------ *)

(* Ids of [flows] transitively reachable from any of [seeds] by node
   sharing; always contains the seeds' ids.  BFS over a node -> flows
   index: every route node is expanded at most once, so the closure
   costs O(total route length).  Formerly lived in Gmf_admctl.Session;
   shared here by every delta caller. *)
let interference_closure ~seeds flows =
  let by_node = Hashtbl.create 64 in
  List.iter
    (fun (f : Traffic.Flow.t) ->
      List.iter
        (fun n ->
          let prev =
            match Hashtbl.find_opt by_node n with Some l -> l | None -> []
          in
          Hashtbl.replace by_node n (f :: prev))
        (Network.Route.nodes f.Traffic.Flow.route))
    flows;
  let closure = Hashtbl.create 16 in
  let visited_node = Hashtbl.create 64 in
  let frontier = ref seeds in
  List.iter
    (fun (s : Traffic.Flow.t) -> Hashtbl.replace closure s.Traffic.Flow.id ())
    seeds;
  while !frontier <> [] do
    let grown = ref [] in
    List.iter
      (fun (f : Traffic.Flow.t) ->
        List.iter
          (fun n ->
            if not (Hashtbl.mem visited_node n) then begin
              Hashtbl.replace visited_node n ();
              List.iter
                (fun (g : Traffic.Flow.t) ->
                  if not (Hashtbl.mem closure g.Traffic.Flow.id) then begin
                    Hashtbl.replace closure g.Traffic.Flow.id ();
                    grown := g :: !grown
                  end)
                (match Hashtbl.find_opt by_node n with
                | Some l -> l
                | None -> [])
            end)
          (Network.Route.nodes f.Traffic.Flow.route))
      !frontier;
    frontier := !grown
  done;
  closure

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let lint_reject ~config scenario =
  match Gmf_lint.Lint.errors (Gmf_lint.Lint.run ~config scenario) with
  | [] -> None
  | errors ->
      Some
        {
          Holistic.verdict =
            Holistic.Analysis_failed
              (List.map Admission.failure_of_diag errors);
          rounds = 0;
          results = [];
        }

let mk_stats ~total ~closure ~rounds ~saved ~fallback ~warm =
  if Gmf_obs.Metrics.enabled Gmf_obs.Metrics.default then begin
    Gmf_obs.Metrics.incr ~by:closure m_closure;
    Gmf_obs.Metrics.incr ~by:(total - closure) m_skipped;
    Gmf_obs.Metrics.incr ~by:saved m_saved;
    if fallback then Gmf_obs.Metrics.incr m_fallbacks
  end;
  {
    total_flows = total;
    closure_flows = closure;
    skipped_flows = total - closure;
    rounds;
    rounds_saved = saved;
    cold_fallback = fallback;
    warm_seeded = warm;
  }

(* Comparison ruled out: analyze the target cold (optionally through the
   full-scenario lint gate), certify nothing. *)
let cold_fallback ~lint ~config target ~total =
  match if lint then lint_reject ~config target else None with
  | Some report ->
      {
        d_report = report;
        d_state = Jitter_state.create ();
        d_untouched = [];
        d_stats =
          mk_stats ~total ~closure:total ~rounds:0 ~saved:0 ~fallback:true
            ~warm:false;
      }
  | None ->
      let ctx = Ctx.create ~config target in
      let report = Holistic.run ctx in
      {
        d_report = report;
        d_state = Ctx.snapshot ctx;
        d_untouched = [];
        d_stats =
          mk_stats ~total ~closure:total ~rounds:report.Holistic.rounds
            ~saved:0 ~fallback:true ~warm:false;
      }

let analyze ?(lint = false) ?(precheck = false) base target =
  Gmf_obs.Metrics.incr m_runs;
  let config = base.b_config in
  let target_flows = Traffic.Scenario.flows target in
  let total = List.length target_flows in
  if not (base.b_ok && same_structure base target) then
    cold_fallback ~lint ~config target ~total
  else begin
    let base_flows = Traffic.Scenario.flows base.b_scenario in
    let added, removed, changed = diff_flows base_flows target_flows in
    if added = [] && removed = [] && changed = [] then
      (* Identity edit: the base fixpoint is the answer. *)
      {
        d_report = base.b_report;
        d_state = Jitter_state.copy base.b_state;
        d_untouched =
          List.map (fun (f : Traffic.Flow.t) -> f.Traffic.Flow.id)
            target_flows;
        d_stats =
          mk_stats ~total ~closure:0 ~rounds:0
            ~saved:base.b_report.Holistic.rounds ~fallback:false ~warm:false;
      }
    else begin
      (* Both versions of every changed flow seed the closure, over the
         union of the two flow sets: a removed flow may be the only
         bridge between two target components, and the closure must
         still join them. *)
      let seeds =
        removed @ List.map fst changed @ List.map snd changed @ added
      in
      let union_flows = base_flows @ List.map snd changed @ added in
      let closure = interference_closure ~seeds union_flows in
      let in_closure (f : Traffic.Flow.t) =
        Hashtbl.mem closure f.Traffic.Flow.id
      in
      let closure_ids =
        List.filter_map
          (fun (f : Traffic.Flow.t) ->
            if in_closure f then Some f.Traffic.Flow.id else None)
          target_flows
      in
      let untouched =
        List.filter (fun f -> not (in_closure f)) target_flows
      in
      let untouched_tbl = Hashtbl.create 64 in
      List.iter
        (fun (f : Traffic.Flow.t) ->
          Hashtbl.replace untouched_tbl f.Traffic.Flow.id ())
        untouched;
      let sub = Sharded.sub_scenario target closure_ids in
      (* Sound because the closure is a union of complete target
         components: a lint error of the degraded scenario involves a
         changed component (the base lints clean), and changed
         components are wholly inside the restriction. *)
      let lint_gate =
        if not lint then None
        else if base.b_lint_clean then lint_reject ~config sub
        else lint_reject ~config target
      in
      match lint_gate with
      | Some report ->
          {
            d_report = report;
            d_state = Jitter_state.create ();
            d_untouched = [];
            d_stats =
              mk_stats ~total
                ~closure:(List.length closure_ids)
                ~rounds:0 ~saved:0 ~fallback:false ~warm:false;
          }
      | None ->
          let pure_growth = removed = [] && changed = [] in
          let sub_report, sub_state =
            if pure_growth then begin
              (* From below: the base fixed point restricted to the
                 closure sits under the new least fixed point (added
                 flows only add interference), so the monotone squeeze
                 converges to the same fixpoint in fewer rounds. *)
              let ctx = Ctx.create ~config sub in
              let r =
                Holistic.run_from ctx
                  ~init:
                    (Jitter_state.filter_flows base.b_state
                       ~keep:(Hashtbl.mem closure))
              in
              (r, Ctx.snapshot ctx)
            end
            else if precheck then
              (* Shrinking or mixed edit under [~precheck:true]: restart
                 the closure cold through the precheck-guided sharded
                 engine — the same path a cold {!Sharded.analyze} of the
                 full target takes, restricted to the closure.  Flows
                 precheck decides statically never burn fixpoint rounds,
                 but their synthetic results carry certified ceilings
                 rather than converged bounds, so no jitter state comes
                 back: [d_state] keeps only the untouched flows' base
                 entries (a sound — if partial — warm seed, since absent
                 entries restart from source jitters). *)
              let r, _precheck, _stats = Sharded.analyze ~config sub in
              (r, Jitter_state.create ())
            else begin
              (* Shrinking or mixed edit: iterating down from a stale
                 state may stop above the least fixed point, so the
                 closure restarts from source jitters. *)
              let ctx = Ctx.create ~config sub in
              let r = Holistic.run ctx in
              (r, Ctx.snapshot ctx)
            end
          in
          (* Merge: untouched flows keep their base result records
             (physically — the certificate the tests check), closure
             flows take the re-converged ones; scenario flow order. *)
          let by_id = Hashtbl.create 64 in
          List.iter
            (fun (r : Result_types.flow_result) ->
              let id = r.Result_types.flow.Traffic.Flow.id in
              if Hashtbl.mem untouched_tbl id then Hashtbl.replace by_id id r)
            base.b_report.Holistic.results;
          List.iter
            (fun (r : Result_types.flow_result) ->
              Hashtbl.replace by_id r.Result_types.flow.Traffic.Flow.id r)
            sub_report.Holistic.results;
          let results =
            List.filter_map
              (fun (f : Traffic.Flow.t) ->
                Hashtbl.find_opt by_id f.Traffic.Flow.id)
              target_flows
          in
          let verdict =
            match sub_report.Holistic.verdict with
            | Holistic.Analysis_failed _ | Holistic.No_fixed_point _ ->
                sub_report.Holistic.verdict
            | Holistic.Schedulable | Holistic.Deadline_miss _ -> (
                match Holistic.deadline_misses results with
                | [] -> Holistic.Schedulable
                | misses -> Holistic.Deadline_miss misses)
          in
          let rounds = sub_report.Holistic.rounds in
          let d_state =
            Jitter_state.union
              (Jitter_state.filter_flows base.b_state
                 ~keep:(Hashtbl.mem untouched_tbl))
              sub_state
          in
          {
            d_report = { Holistic.verdict; rounds; results };
            d_state;
            d_untouched =
              List.map
                (fun (f : Traffic.Flow.t) -> f.Traffic.Flow.id)
                untouched;
            d_stats =
              mk_stats ~total
                ~closure:(List.length closure_ids)
                ~rounds
                ~saved:(max 0 (base.b_report.Holistic.rounds - rounds))
                ~fallback:false ~warm:pure_growth;
          }
    end
  end
