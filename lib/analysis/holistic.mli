(** Holistic fixed-point over mutually-interfering flows (paper Section 3.5,
    after Tindell & Clark).

    Only source jitters are known a priori.  Starting from zero jitter at
    every non-source stage, each round re-runs the pipeline analysis of
    every flow; the per-stage jitters computed in one round are the [extra]
    terms of the next.  Jitters grow monotonically, so the iteration either
    reaches a fixed point (the bounds are then valid) or keeps growing —
    divergence, reported as unschedulable (repair R6). *)

type verdict =
  | Schedulable
  | Deadline_miss of Result_types.failure list
      (** Fixed point reached but some frame's bound exceeds its deadline. *)
  | Analysis_failed of Result_types.failure list
      (** A stage diverged or a cap was hit. *)
  | No_fixed_point of int
      (** Jitters still changing after the configured number of rounds. *)

type report = {
  verdict : verdict;
  rounds : int;  (** Holistic rounds actually executed. *)
  results : Result_types.flow_result list;
      (** Per-flow bounds from the last completed round (valid only when
          [verdict = Schedulable] or [Deadline_miss _]). *)
}

(** {2 Convergence observation}

    One record per holistic round, handed to the installed observer right
    after the round's pipeline pass: which flows' jitter entries moved and
    by how much.  {!Gmf_explain.Convergence} builds its per-round telemetry
    on this. *)
type round_observation = {
  obs_round : int;  (** 1-based round number within one run. *)
  obs_flow_deltas : (Traffic.Flow.id * Gmf_util.Timeunit.ns) list;
      (** {!Jitter_state.flow_deltas} of the round: every flow present in
          the state, with its largest per-entry change (0 = stable). *)
  obs_max_delta : Gmf_util.Timeunit.ns;  (** Max over [obs_flow_deltas]. *)
}

val set_round_observer : (round_observation -> unit) option -> unit
(** Installs (or clears, with [None]) the process-wide per-round observer.
    Fires on every round of every run — including nested warm-started runs —
    regardless of the metrics registry's enabled flag.  Callers should
    restore the previous value when done ([Fun.protect]). *)

val run : Ctx.t -> report
(** [run ctx] executes the holistic iteration on the context's scenario,
    resetting the jitter state first. *)

val run_from : Ctx.t -> init:Jitter_state.t -> report
(** [run_from ctx ~init] warm-starts the iteration from [init] (completed
    with every flow's source jitters) instead of the all-zero state.

    Soundness: one holistic round is a monotone function [F] of the jitter
    state, and {!run} computes the least fixed point [lfp F] from the
    bottom state [b] (source jitters only).  For any [init] with
    [b <= init <= lfp F], the squeeze [F^n b <= F^n init <= lfp F] shows
    the warm iteration converges to the {e same} fixed point — identical
    verdicts and bounds, in at most as many rounds.  A converged state of
    a {e subset} of the scenario's flows qualifies: adding flows only adds
    interference, so the old fixed point sits below the new one.  A state
    from a {e larger} or parameter-changed flow set does not qualify —
    callers must drop the entries of every flow whose fixed point may have
    shrunk ({!Jitter_state.filter_flows}) or fall back to {!run}. *)

val analyze : ?config:Config.t -> Traffic.Scenario.t -> report
(** One-shot convenience: build a context and {!run}. *)

val deadline_misses : Result_types.flow_result list -> Result_types.failure list
(** The per-frame deadline violations of a result set, in result order —
    exactly the list a [Deadline_miss] verdict carries.  Exposed so
    {!Sharded} can rebuild the monolithic verdict from merged
    per-component results. *)

val is_schedulable : report -> bool

val pp_verdict : Format.formatter -> verdict -> unit
val pp : Format.formatter -> report -> unit
