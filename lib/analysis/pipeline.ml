(* Lower bound on every packet's response at a stage: even an uncontended
   packet must transmit itself (link stages) or consume its own task
   rotations (ingress).  Used by the tight-jitter rule: jitter grows by the
   stage's response-time variability R - R_min, never by less than 0. *)
let stage_min_response ctx flow ~frame stage =
  let scenario = Ctx.scenario ctx in
  match stage with
  | Stage.First_link (src, dst) | Stage.Egress (src, dst) ->
      let p = Ctx.params ctx flow ~src ~dst in
      p.Traffic.Link_params.c.(frame)
      + p.Traffic.Link_params.link.Network.Link.prop
  | Stage.Ingress node ->
      let prec = Network.Route.prec flow.Traffic.Flow.route node in
      let p = Ctx.params ctx flow ~src:prec ~dst:node in
      let model = Traffic.Scenario.switch_model scenario node in
      p.Traffic.Link_params.eth_frames.(frame)
      * model.Click.Switch_model.croute

(* Nanosecond-scale buckets for per-stage response-time contributions:
   1us .. 1s in decades. *)
let response_bounds =
  [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000;
     1_000_000_000 |]

let resp_first_link =
  Gmf_obs.Metrics.histogram ~bounds:response_bounds Gmf_obs.Metrics.default
    "stage.response_ns.first_link"

let resp_ingress =
  Gmf_obs.Metrics.histogram ~bounds:response_bounds Gmf_obs.Metrics.default
    "stage.response_ns.ingress"

let resp_egress =
  Gmf_obs.Metrics.histogram ~bounds:response_bounds Gmf_obs.Metrics.default
    "stage.response_ns.egress"

(* Constant span names: selecting by match keeps the disabled path
   allocation-free. *)
let stage_span_name = function
  | Stage.First_link _ -> "stage.first_link"
  | Stage.Ingress _ -> "stage.ingress"
  | Stage.Egress _ -> "stage.egress"

let resp_hist = function
  | Stage.First_link _ -> resp_first_link
  | Stage.Ingress _ -> resp_ingress
  | Stage.Egress _ -> resp_egress

let analyze_frame ctx ~flow ~frame =
  if frame < 0 || frame >= Traffic.Flow.n flow then
    invalid_arg "Pipeline.analyze_frame: frame index out of range";
  let spec_frame = Gmf.Spec.frame flow.Traffic.Flow.spec frame in
  let gj = spec_frame.Gmf.Frame_spec.jitter in
  let deadline = spec_frame.Gmf.Frame_spec.deadline in
  let stages = Stage.stages_of_route flow.Traffic.Flow.route in
  let tight = (Ctx.config ctx).Config.tight_jitter in
  let analyze_stage stage =
    let result =
      Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"analysis"
        (stage_span_name stage) (fun () ->
          match stage with
          | Stage.First_link _ -> First_hop.analyze ctx ~flow ~frame
          | Stage.Ingress node -> Ingress.analyze ctx ~flow ~node ~frame
          | Stage.Egress (node, _) -> Egress.analyze ctx ~flow ~node ~frame)
    in
    (match result with
    | Ok sr ->
        Gmf_obs.Metrics.observe (resp_hist stage) sr.Result_types.response
    | Error _ -> ());
    result
  in
  (* RSUM accumulates stage responses into the end-to-end bound (Figure 6
     line 24); JSUM is the generalized jitter handed to the next stage.
     The paper advances both by the full stage response; under the
     tight-jitter rule JSUM only grows by the stage's variability. *)
  let rec walk stages rsum jsum acc =
    match stages with
    | [] ->
        Ok
          {
            Result_types.frame;
            stages = List.rev acc;
            total = rsum;
            deadline;
          }
    | stage :: rest -> begin
        Ctx.set_jitter ctx flow ~frame ~stage jsum;
        match analyze_stage stage with
        | Error failure -> Error failure
        | Ok stage_response ->
            let r = stage_response.Result_types.response in
            let jitter_growth =
              if tight then
                max 0 (r - stage_min_response ctx flow ~frame stage)
              else r
            in
            walk rest (rsum + r) (jsum + jitter_growth)
              (stage_response :: acc)
      end
  in
  walk stages gj gj []

(* Static impossibility gate: when a link or ingress rotation on this
   flow's route is utilization-overloaded, the busy-period recurrences
   provably diverge — skip them and fail with the diagnostic instead of
   burning [max_busy_iters] iterations to find out. *)
let lint_gate ctx ~flow =
  match Gmf_lint.Rules.flow_gate (Ctx.scenario ctx) flow with
  | [] -> None
  | d :: _ ->
      Some
        {
          Result_types.flow_id = flow.Traffic.Flow.id;
          frame = 0;
          failed_stage = None;
          reason = Gmf_diag.to_string d;
        }

let analyze_flow ctx ~flow =
  match lint_gate ctx ~flow with
  | Some failure -> Error failure
  | None ->
  let n = Traffic.Flow.n flow in
  let results = Array.make n None in
  let rec go k =
    if k >= n then
      Ok
        {
          Result_types.flow;
          frames = Array.map Option.get results;
        }
    else
      match analyze_frame ctx ~flow ~frame:k with
      | Error failure -> Error failure
      | Ok fr ->
          results.(k) <- Some fr;
          go (k + 1)
  in
  go 0
