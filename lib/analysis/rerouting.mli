(** Admission with rerouting: when a candidate flow is rejected on its
    default route, try alternative routes before giving up.

    The paper fixes every route a priori; combined with
    {!Network.Pathfind} this module gives the operator the obvious
    next move — the admission gain is measured by experiment E14. *)

type decision = {
  admitted : bool;
  route : Network.Route.t option;
      (** The route that was accepted (possibly the candidate's own);
          [None] when every alternative failed. *)
  attempts : int;  (** Number of routes tried. *)
  report : Holistic.report;
      (** Analysis of the accepted configuration, or of the last attempt
          when rejected. *)
}

val with_route : Traffic.Flow.t -> Network.Route.t -> Traffic.Flow.t
(** The same flow (id, name, spec, encapsulation, default priority) on a
    different route.  Per-hop 802.1p remarks are dropped deliberately:
    they name hops of the old route. *)

val admit :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  ?max_routes:int ->
  ?avoid_links:(Network.Node.id * Network.Node.id) list ->
  ?avoid_nodes:Network.Node.id list ->
  Traffic.Scenario.t ->
  candidate:Traffic.Flow.t ->
  decision
(** [admit scenario ~candidate] first tries the candidate's own route, then
    up to [max_routes] (default 4) alternatives from
    [Network.Pathfind.k_shortest] ordered by hop count.  The scenario
    itself is never modified.

    [avoid_links]/[avoid_nodes] describe failed components (see
    [Gmf_faults]): avoided routes are never tried — including the
    candidate's own route when it crosses a failed component.

    Candidate routes are independent cases evaluated through [exec]
    (default {!Gmf_exec.seq}) via {!Case.search_schedulable}: the
    accepted route and the [attempts] count are the ones sequential
    first-match search produces, for every backend. *)

val admit_greedily :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  ?max_routes:int ->
  topo:Network.Topology.t ->
  switches:(Network.Node.id * Click.Switch_model.t) list ->
  Traffic.Flow.t list ->
  Traffic.Flow.t list * Traffic.Flow.t list
(** Greedy admission with rerouting; returns (admitted — with their final,
    possibly rerouted, routes — and rejected).  Comparable to
    [Admission.admit_greedily], which never reroutes. *)
