(** Admission control (paper Section 3.5, last paragraph).

    A network operator asked to carry a new flow re-runs the holistic
    analysis on the extended flow set and admits the flow only if every
    flow — old and new — still meets every deadline.  Rejection therefore
    protects the already-admitted flows. *)

type decision = {
  admitted : bool;
  report : Holistic.report;
      (** The analysis of the extended flow set (for an [admit] call) or of
          the scenario as-is (for [check]).  When the lint pre-pass found
          errors the verdict is [Analysis_failed] with one synthetic
          failure per lint error and [rounds = 0] — the holistic fixpoint
          was never entered. *)
  diagnostics : Gmf_diag.t list;
      (** Every diagnostic of the [Gmf_lint] pre-pass, errors and
          non-fatal warnings/hints alike. *)
}

val check : ?exec:Gmf_exec.t -> ?config:Config.t -> Traffic.Scenario.t -> decision
(** [check scenario] runs the [Gmf_lint] pre-pass, rejects immediately on
    any lint error (no fixpoint is executed), and otherwise verifies the
    scenario's flow set with the precheck-guided {!Sharded} analysis:
    statically decided flows skip the fixpoint, undecided interference
    components run independent fixpoints (on [exec]'s backend when
    given).  The precheck's own diagnostics (GMF018 certificates, GMF019
    component-size warnings) are appended to the lint diagnostics. *)

val admit :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  ?gate:(Traffic.Scenario.t -> Gmf_diag.t list) ->
  Traffic.Scenario.t ->
  candidate:Traffic.Flow.t ->
  decision
(** [admit scenario ~candidate] tests the scenario with [candidate] added.
    The scenario itself is not modified; the caller rebuilds it on
    acceptance.  A candidate whose id collides with an admitted flow is
    {e rejected} with a [GMF014] diagnostic ([rounds = 0], no fixpoint) —
    mirroring the lint pre-pass rather than raising.

    [gate], when given, is an extra admission policy run on the {e
    extended} scenario only after the schedulability check accepts: a
    non-empty diagnostic list (e.g. [GMF017] from
    [Gmf_faults.Survive.admission_gate]) turns the acceptance into a
    rejection carrying both the lint diagnostics and the gate's. *)

val admit_exn :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  Traffic.Scenario.t ->
  candidate:Traffic.Flow.t ->
  decision
(** Pre-GMF014 behaviour of {!admit}: raises [Invalid_argument] on a
    duplicate candidate id (via [Traffic.Scenario.make]). *)

val binding_failure : decision -> Result_types.failure option
(** The single constraint that binds a rejection: for a deadline miss, the
    failure of the frame with the smallest (most negative) slack; for an
    analysis/lint failure, the first recorded failure; a synthetic failure
    for a non-converging fixpoint.  [None] when the decision admitted. *)

val failure_of_diag : Gmf_diag.t -> Result_types.failure
(** The synthetic analysis failure a lint error turns into inside a
    rejecting decision — shared with [Gmf_admctl] so session rejections
    render like batch rejections. *)

val admit_greedily :
  ?config:Config.t ->
  topo:Network.Topology.t ->
  switches:(Network.Node.id * Click.Switch_model.t) list ->
  Traffic.Flow.t list ->
  Traffic.Flow.t list * Traffic.Flow.t list
(** [admit_greedily ~topo ~switches candidates] processes candidates in
    order, keeping each flow whose addition leaves the set schedulable.
    Returns (admitted, rejected).  This is the acceptance-ratio engine of
    experiment E4. *)
