open Gmf_util

type key = Traffic.Flow.id * Stage.t * int

type t = (key, Timeunit.ns) Hashtbl.t

let create () : t = Hashtbl.create 256

let get t ~flow ~stage ~frame =
  Option.value ~default:0 (Hashtbl.find_opt t (flow, stage, frame))

let set t ~flow ~stage ~frame value =
  if value < 0 then invalid_arg "Jitter_state.set: negative jitter";
  if frame < 0 then invalid_arg "Jitter_state.set: negative frame index";
  if value = 0 then Hashtbl.remove t (flow, stage, frame)
  else Hashtbl.replace t (flow, stage, frame) value

let extra t ~flow ~n_frames ~stage =
  let best = ref 0 in
  for frame = 0 to n_frames - 1 do
    let v = get t ~flow ~stage ~frame in
    if v > !best then best := v
  done;
  !best

let copy t = Hashtbl.copy t

let filter_flows t ~keep =
  let out = create () in
  Hashtbl.iter
    (fun ((flow, _, _) as key) v -> if keep flow then Hashtbl.replace out key v)
    t;
  out

let union a b =
  let out = copy a in
  Hashtbl.iter (Hashtbl.replace out) b;
  out

let equal a b =
  let subset x y =
    Hashtbl.fold
      (fun k v acc ->
        acc && Option.value ~default:0 (Hashtbl.find_opt y k) = v)
      x true
  in
  subset a b && subset b a

let max_value t = Hashtbl.fold (fun _ v acc -> max v acc) t 0

let max_delta a b =
  let one x y acc =
    Hashtbl.fold
      (fun k v acc ->
        let w = Option.value ~default:0 (Hashtbl.find_opt y k) in
        Stdlib.max acc (abs (v - w)))
      x acc
  in
  one a b (one b a 0)

let flow_deltas a b =
  let tbl = Hashtbl.create 16 in
  let one x y =
    Hashtbl.iter
      (fun ((flow, _, _) as k) v ->
        let w = Option.value ~default:0 (Hashtbl.find_opt y k) in
        let d = abs (v - w) in
        match Hashtbl.find_opt tbl flow with
        | Some cur when cur >= d -> ()
        | _ -> Hashtbl.replace tbl flow d)
      x
  in
  one a b;
  one b a;
  Hashtbl.fold (fun flow d acc -> (flow, d) :: acc) tbl []
  |> List.sort compare
