type verdict =
  | Schedulable
  | Deadline_miss of Result_types.failure list
  | Analysis_failed of Result_types.failure list
  | No_fixed_point of int

type report = {
  verdict : verdict;
  rounds : int;
  results : Result_types.flow_result list;
}

let deadline_misses results =
  List.concat_map
    (fun res ->
      Array.to_list res.Result_types.frames
      |> List.filter_map (fun fr ->
             if Result_types.meets_deadline fr then None
             else
               Some
                 {
                   Result_types.flow_id = res.Result_types.flow.Traffic.Flow.id;
                   frame = fr.Result_types.frame;
                   failed_stage = None;
                   reason =
                     Format.asprintf "bound %a exceeds deadline %a"
                       Gmf_util.Timeunit.pp fr.Result_types.total
                       Gmf_util.Timeunit.pp fr.Result_types.deadline;
                 }))
    results

(* Convergence telemetry of the Tindell & Clark-style outer iteration. *)
let m_runs = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "holistic.runs"

let m_rounds =
  Gmf_obs.Metrics.histogram Gmf_obs.Metrics.default "holistic.rounds"

let m_fixpoint_rounds =
  Gmf_obs.Metrics.histogram Gmf_obs.Metrics.default "fixpoint.rounds"

let m_jitter_delta =
  Gmf_obs.Metrics.histogram
    ~bounds:
      [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000;
         1_000_000_000 |]
    Gmf_obs.Metrics.default "holistic.jitter_delta_ns"

type round_observation = {
  obs_round : int;
  obs_flow_deltas : (Traffic.Flow.id * Gmf_util.Timeunit.ns) list;
  obs_max_delta : Gmf_util.Timeunit.ns;
}

(* Process-wide hook, like the default metrics registry: the analysis
   library cannot depend on the explain layer, so the convergence recorder
   installs itself here for the duration of a run.  No observer, no cost
   beyond one ref load per round. *)
let round_observer : (round_observation -> unit) option ref = ref None
let set_round_observer f = round_observer := f

let run_round ctx =
  let flows = Traffic.Scenario.flows (Ctx.scenario ctx) in
  let tracer = Gmf_obs.Tracer.default in
  let analyze flow =
    if Gmf_obs.Tracer.enabled tracer then
      Gmf_obs.Tracer.with_span tracer ~cat:"analysis"
        ("flow:" ^ flow.Traffic.Flow.name)
        (fun () -> Pipeline.analyze_flow ctx ~flow)
    else Pipeline.analyze_flow ctx ~flow
  in
  let rec go flows acc failures =
    match flows with
    | [] -> (List.rev acc, List.rev failures)
    | flow :: rest -> begin
        match analyze flow with
        | Ok res -> go rest (res :: acc) failures
        | Error f -> go rest acc (f :: failures)
      end
  in
  go flows [] []

let iterate ctx =
  let max_rounds = (Ctx.config ctx).Config.max_holistic_rounds in
  let metrics_on = Gmf_obs.Metrics.enabled Gmf_obs.Metrics.default in
  let finish n report =
    Gmf_obs.Metrics.incr m_runs;
    Gmf_obs.Metrics.observe m_rounds n;
    Gmf_obs.Metrics.observe m_fixpoint_rounds n;
    report
  in
  let rec rounds n =
    let before = Jitter_state.copy (Ctx.jitters ctx) in
    let results, failures =
      Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"analysis"
        "holistic.round" (fun () -> run_round ctx)
    in
    if metrics_on then
      Gmf_obs.Metrics.observe m_jitter_delta
        (Jitter_state.max_delta before (Ctx.jitters ctx));
    (match !round_observer with
    | None -> ()
    | Some observe ->
        let deltas = Jitter_state.flow_deltas before (Ctx.jitters ctx) in
        let max_d = List.fold_left (fun acc (_, d) -> max acc d) 0 deltas in
        observe
          { obs_round = n; obs_flow_deltas = deltas; obs_max_delta = max_d });
    if failures <> [] then
      finish n { verdict = Analysis_failed failures; rounds = n; results }
    else if Jitter_state.equal before (Ctx.jitters ctx) then begin
      match deadline_misses results with
      | [] -> finish n { verdict = Schedulable; rounds = n; results }
      | misses ->
          finish n { verdict = Deadline_miss misses; rounds = n; results }
    end
    else if n >= max_rounds then
      finish n { verdict = No_fixed_point n; rounds = n; results }
    else rounds (n + 1)
  in
  Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"analysis"
    "holistic.run" (fun () -> rounds 1)

let run ctx =
  Ctx.reset_jitters ctx;
  iterate ctx

let run_from ctx ~init =
  Ctx.restore ctx init;
  iterate ctx

let analyze ?config scenario = run (Ctx.create ?config scenario)

let is_schedulable report = report.verdict = Schedulable

let pp_verdict fmt = function
  | Schedulable -> Format.pp_print_string fmt "schedulable"
  | Deadline_miss fs ->
      Format.fprintf fmt "deadline miss (%d frame%s)" (List.length fs)
        (if List.length fs = 1 then "" else "s")
  | Analysis_failed fs ->
      Format.fprintf fmt "analysis failed (%d failure%s)" (List.length fs)
        (if List.length fs = 1 then "" else "s")
  | No_fixed_point n ->
      Format.fprintf fmt "no jitter fixed point after %d rounds" n

let pp fmt report =
  Format.fprintf fmt "@[<v>verdict: %a (after %d round%s)@," pp_verdict
    report.verdict report.rounds
    (if report.rounds = 1 then "" else "s");
  List.iter
    (fun res ->
      Format.fprintf fmt "@[<v 2>%s:@," res.Result_types.flow.Traffic.Flow.name;
      Array.iter
        (fun fr -> Format.fprintf fmt "%a" Result_types.pp_frame_result fr)
        res.Result_types.frames;
      Format.fprintf fmt "@]@,")
    report.results;
  Format.fprintf fmt "@]"
