type policy =
  | Deadline_monotonic
  | Rate_monotonic
  | Lightest_first
  | Uniform of int

let reprioritize flow priority =
  Traffic.Flow.make ~id:flow.Traffic.Flow.id ~name:flow.Traffic.Flow.name
    ~spec:flow.Traffic.Flow.spec ~encap:flow.Traffic.Flow.encap
    ~route:flow.Traffic.Flow.route ~priority

(* Spread [levels] classes over 0..7: level 0 is the lowest class. *)
let class_of_level ~levels level =
  if levels = 1 then 0 else level * 7 / (levels - 1)

(* Mean wire bandwidth over a cycle in bits/s, independent of link speed. *)
let bandwidth flow =
  let bits =
    Array.to_list (Traffic.Flow.nbits_all flow)
    |> List.fold_left
         (fun acc nbits -> acc + Ethernet.Fragment.total_wire_bits ~nbits)
         0
  in
  float_of_int bits /. (float_of_int (Traffic.Flow.tsum flow) /. 1e9)

let urgency policy flow =
  (* Larger urgency = higher class. *)
  match policy with
  | Deadline_monotonic ->
      -.float_of_int (Gmf.Spec.min_deadline flow.Traffic.Flow.spec)
  | Rate_monotonic ->
      -.float_of_int (Gmf.Spec.min_period flow.Traffic.Flow.spec)
  | Lightest_first -> -.bandwidth flow
  | Uniform _ -> 0.

let assign ?(levels = 8) policy flows =
  if levels < 1 || levels > 8 then
    invalid_arg "Priority_assign.assign: levels outside 1..8";
  match policy with
  | Uniform cls -> List.map (fun f -> reprioritize f cls) flows
  | _ ->
      let n = List.length flows in
      let ranked =
        List.stable_sort
          (fun a b ->
            match compare (urgency policy a) (urgency policy b) with
            | 0 -> compare a.Traffic.Flow.id b.Traffic.Flow.id
            | c -> c)
          flows
      in
      (* rank 0 = least urgent = lowest class *)
      List.mapi
        (fun rank flow ->
          let level = if n = 1 then levels - 1 else rank * levels / n in
          reprioritize flow (class_of_level ~levels (min level (levels - 1))))
        ranked
      |> List.sort (fun a b -> compare a.Traffic.Flow.id b.Traffic.Flow.id)

let worst_bound report =
  List.fold_left
    (fun acc res ->
      max acc
        (Result_types.worst_frame res).Result_types.total)
    0 report.Holistic.results

let best_exhaustive ?exec ?config ?(levels = 8) ~topo ~switches flows =
  if levels < 1 || levels > 8 then
    invalid_arg "Priority_assign.best_exhaustive: levels outside 1..8";
  let flows = Array.of_list flows in
  let n = Array.length flows in
  let classes = Array.init levels (fun l -> class_of_level ~levels l) in
  (* All [levels]^n candidate flow sets in enumeration order: position 0
     varies slowest, level 0 first — the order the old recursive search
     visited, which the fold below relies on for tie-breaking. *)
  let candidates =
    let rec enumerate i acc =
      if i = n then [ List.rev acc ]
      else
        List.concat_map
          (fun level ->
            enumerate (i + 1) (reprioritize flows.(i) classes.(level) :: acc))
          (List.init levels Fun.id)
    in
    enumerate 0 []
  in
  let analyze candidate =
    Holistic.analyze ?config
      (Traffic.Scenario.make ~switches ~topo ~flows:candidate ())
  in
  (* Candidates are independent cases; the fold keeps the first strict
     minimum in enumeration order, so the winner is backend independent. *)
  let outcomes = Gmf_exec.map_cases ?exec ~f:analyze candidates in
  List.fold_left2
    (fun best candidate outcome ->
      match outcome with
      | Ok report when Holistic.is_schedulable report -> begin
          let bound = worst_bound report in
          match best with
          | Some (_, best_bound) when best_bound <= bound -> best
          | _ -> Some (candidate, bound)
        end
      | Ok _ | Error _ -> best)
    None candidates outcomes
