let incoming_link flow node =
  let route = flow.Traffic.Flow.route in
  if not (Network.Route.mem route node) then
    invalid_arg "Ingress.analyze: node not on the flow's route";
  (Network.Route.prec route node, node)

let analyze ctx ~flow ~node ~frame =
  if frame < 0 || frame >= Traffic.Flow.n flow then
    invalid_arg "Ingress.analyze: frame index out of range";
  let p, n = incoming_link flow node in
  let stage = Stage.Ingress n in
  let scenario = Ctx.scenario ctx in
  let circ = Traffic.Scenario.circ scenario n in
  let own = Ctx.params ctx flow ~src:p ~dst:n in
  let m_k = own.Traffic.Link_params.eth_frames.(frame) in
  let nsum_i = Traffic.Link_params.nsum own in
  let tsum_i = Traffic.Flow.tsum flow in
  let all = Traffic.Scenario.flows_on scenario ~src:p ~dst:n in
  let others =
    List.filter (fun j -> j.Traffic.Flow.id <> flow.Traffic.Flow.id) all
  in
  let extra j = Ctx.extra ctx j ~stage in
  let interference flows dt =
    List.fold_left
      (fun acc j -> acc + Ctx.nx ctx j ~src:p ~dst:n ~dt:(dt + extra j))
      0 flows
  in
  let variant = (Ctx.config ctx).Config.variant in
  let periods = Gmf.Spec.periods flow.Traffic.Flow.spec in
  let pre_m l =
    Stage_common.window_before own.Traffic.Link_params.eth_frames ~k:frame
      ~len:l
  in
  let pre_t l = Stage_common.window_before periods ~k:frame ~len:l in
  let own_charge q l =
    (* Task rotations consumed by the analyzed flow itself before its last
       Ethernet frame is enqueued: the paper (eqs 23-24) charges one per
       cycle; the Repaired variant charges one per own Ethernet frame,
       including those of the l predecessor frames (repair R8). *)
    match variant with
    | Config.Faithful -> q * circ
    | Config.Repaired -> ((q * nsum_i) + pre_m l + (m_k - 1)) * circ
  in
  let busy_seed =
    match variant with
    | Config.Faithful -> circ
    | Config.Repaired -> m_k * circ
  in
  Stage_common.run ~ctx ~stage ~flow ~frame ~busy_seed
    ~busy_step:(fun t -> interference all t * circ)
    ~w_base:(fun ~q ~l -> own_charge q l)
    ~w_step:(fun ~q ~l w -> own_charge q l + (interference others w * circ))
    ~finish:(fun ~q ~l ~w -> w - ((q * tsum_i) + pre_t l) + circ)

let utilization_condition ctx ~flow ~node =
  let p, n = incoming_link flow node in
  Gmf_precheck.Static_tests.ingress_utilization (Ctx.scenario ctx) ~src:p
    ~node:n
