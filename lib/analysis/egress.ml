let outgoing_link flow node =
  let route = flow.Traffic.Flow.route in
  if not (Network.Route.mem route node) then
    invalid_arg "Egress.analyze: node not on the flow's route";
  (node, Network.Route.succ route node)

let analyze ctx ~flow ~node ~frame =
  if frame < 0 || frame >= Traffic.Flow.n flow then
    invalid_arg "Egress.analyze: frame index out of range";
  let n, d = outgoing_link flow node in
  let stage = Stage.Egress (n, d) in
  let scenario = Ctx.scenario ctx in
  let circ = Traffic.Scenario.circ scenario n in
  let own = Ctx.params ctx flow ~src:n ~dst:d in
  let c_k = own.Traffic.Link_params.c.(frame) in
  let m_k = own.Traffic.Link_params.eth_frames.(frame) in
  let csum_i = Traffic.Link_params.csum own in
  let nsum_i = Traffic.Link_params.nsum own in
  let tsum_i = Traffic.Flow.tsum flow in
  let mft = Traffic.Link_params.mft own in
  let prop = own.Traffic.Link_params.link.Network.Link.prop in
  let hep = Traffic.Scenario.hep scenario flow ~node:n in
  let hep_and_self = flow :: hep in
  let extra j = Ctx.extra ctx j ~stage in
  (* Combined link-time + task-rotation interference of a flow set over an
     interval: the MX and NX * CIRC terms of eqs (29)/(31). *)
  let interference flows dt =
    List.fold_left
      (fun acc j ->
        let dt_j = dt + extra j in
        acc
        + Ctx.mx ctx j ~src:n ~dst:d ~dt:dt_j
        + (Ctx.nx ctx j ~src:n ~dst:d ~dt:dt_j * circ))
      0 flows
  in
  let periods = Gmf.Spec.periods flow.Traffic.Flow.spec in
  let pre_c l = Stage_common.window_before own.Traffic.Link_params.c ~k:frame ~len:l in
  let pre_m l =
    Stage_common.window_before own.Traffic.Link_params.eth_frames ~k:frame
      ~len:l
  in
  let pre_t l = Stage_common.window_before periods ~k:frame ~len:l in
  let own_rotations q l =
    match (Ctx.config ctx).Config.variant with
    | Config.Faithful -> 0
    | Config.Repaired -> ((q * nsum_i) + pre_m l + m_k) * circ
  in
  (* Own predecessor transmissions (repair R8) join the q whole cycles. *)
  let own_work q l = (q * csum_i) + pre_c l in
  Stage_common.run ~ctx ~stage ~flow ~frame ~busy_seed:mft
    ~busy_step:(fun t -> mft + interference hep_and_self t)
    ~w_base:(fun ~q ~l -> mft + own_work q l + own_rotations q l)
    ~w_step:(fun ~q ~l w ->
      mft + own_work q l + own_rotations q l + interference hep w)
    ~finish:(fun ~q ~l ~w -> w - ((q * tsum_i) + pre_t l) + c_k + prop)

let utilization_condition ctx ~flow ~node =
  let n, _ = outgoing_link flow node in
  Gmf_precheck.Static_tests.egress_utilization (Ctx.scenario ctx) flow
    ~node:n
