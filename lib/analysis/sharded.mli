(** Precheck-guided holistic analysis: decide statically what can be
    decided, fixpoint the rest component by component.

    {!analyze} runs {!Gmf_precheck.Precheck.run} first, then:

    - statically infeasible flows are rejected without any fixpoint (the
      certificate becomes the failure reason);
    - certified flows get synthetic results carrying their certified
      per-frame ceilings ([stages = []], no fixpoint either);
    - every remaining interference component is analyzed as an
      independent sub-scenario through {!Case.analyze_all} (so the
      per-component fixpoints share the process-wide memo and can run on
      any {!Gmf_exec} backend).

    Because interference never crosses component boundaries (two flows
    interfere only where their routes share a node, which is exactly an
    {!Gmf_precheck.Igraph} edge), the union of the per-component fixed
    points {e is} the monolithic fixed point: with [~skip_decided:false]
    (every component fixpointed, nothing synthesized) the merged report
    equals [Holistic.analyze] structurally — results in scenario flow
    order, [rounds] the maximum over components, the verdict rebuilt
    with {!Holistic.deadline_misses}.  The property tests enforce this.
    The only caveat is an [Analysis_failed] monolithic run, which stops
    {e every} flow at the failing round, while the sharded run lets the
    other components converge — same verdict constructor, possibly more
    results. *)

type stats = {
  components : int;  (** Interference components in the scenario. *)
  components_run : int;  (** Components that actually fixpointed. *)
  flows : int;
  flows_infeasible : int;  (** Rejected statically. *)
  flows_certified : int;  (** Admitted statically. *)
}

val sub_scenario : Traffic.Scenario.t -> Traffic.Flow.id list -> Traffic.Scenario.t
(** [sub_scenario scenario flow_ids] restricts the scenario to the given
    flows, keeping the full topology and only the switch models the member
    routes traverse.  When [flow_ids] is a union of complete interference
    components, analyzing the restriction is byte-equal to restricting the
    analysis (the sharding property above).  Exposed for {!Delta}, which
    fixpoints exactly the interference closure of an edit. *)

val analyze :
  ?exec:Gmf_exec.t ->
  ?skip_decided:bool ->
  ?config:Config.t ->
  Traffic.Scenario.t ->
  Holistic.report * Gmf_precheck.Precheck.report * stats
(** [analyze ?exec ?skip_decided ?config scenario] is the merged report,
    the precheck report it was guided by, and the sharding counters.

    [skip_decided] defaults to [true].  With [false], precheck verdicts
    are computed but ignored: every component runs the fixpoint, which
    makes the merged report structurally equal to the monolithic one
    (the byte-identity property above). *)

val pp_stats : Format.formatter -> stats -> unit
