type check = {
  flow_id : Traffic.Flow.id;
  flow_name : string;
  stage : Stage.t;
  utilization : float;
  satisfied : bool;
}

let make_check flow stage utilization =
  {
    flow_id = flow.Traffic.Flow.id;
    flow_name = flow.Traffic.Flow.name;
    stage;
    utilization;
    satisfied = utilization < 1.0;
  }

(* The inequalities themselves live in Gmf_precheck.Static_tests (the
   single home of eqs (20)/(34)-(35)); this module keeps the Ctx-keyed
   reporting shape the experiments consume. *)
let check_flow ctx ~flow =
  let scenario = Ctx.scenario ctx in
  let condition stage =
    make_check flow stage
      (Gmf_precheck.Static_tests.stage_utilization scenario flow stage)
  in
  List.map condition (Stage.stages_of_route flow.Traffic.Flow.route)

let check_all ctx =
  Traffic.Scenario.flows (Ctx.scenario ctx)
  |> List.concat_map (fun flow -> check_flow ctx ~flow)

let all_satisfied checks = List.for_all (fun c -> c.satisfied) checks

let worst = function
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc c -> if c.utilization > acc.utilization then c else acc)
           first rest)

let pp_check fmt c =
  Format.fprintf fmt "%s at %a: U=%.4f %s" c.flow_name Stage.pp c.stage
    c.utilization
    (if c.satisfied then "ok" else "VIOLATED")
