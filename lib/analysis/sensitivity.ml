(* Every probe goes through the case layer: the executor supplies the
   per-case timeout, and the shared memo means a probe revisited across
   searches (or by another driver) reuses its fixpoint.  The bisections
   themselves are inherently sequential — each probe depends on the last
   verdict — so [exec] parallelism only shows up via the memo. *)
let schedulable ?exec ?config scenario = Case.schedulable ?exec ?config scenario

(* Binary search on integers: smallest x in [lo, hi] with [ok x], given
   [not (ok lo)] and [ok hi]; stops at 1% relative resolution. *)
let search_min_int ~lo ~hi ~ok =
  let rec go lo hi =
    if hi - lo <= max 1 (lo / 100) then hi
    else begin
      let mid = lo + ((hi - lo) / 2) in
      if ok mid then go lo mid else go mid hi
    end
  in
  go lo hi

let min_link_rate ?exec ?config ?(lo = 1_000_000) ?(hi = 10_000_000_000)
    ~build () =
  if lo <= 0 || lo > hi then invalid_arg "Sensitivity.min_link_rate: bad range";
  let ok rate_bps = schedulable ?exec ?config (build ~rate_bps) in
  if not (ok hi) then None
  else if ok lo then Some lo
  else Some (search_min_int ~lo ~hi ~ok)

(* Binary search on floats: largest scale with [ok scale], given [ok lo]. *)
let search_max_float ~lo ~hi ~resolution ~ok =
  let rec go lo hi =
    if (hi -. lo) /. hi <= resolution then lo
    else begin
      let mid = (lo +. hi) /. 2. in
      if ok mid then go mid hi else go lo mid
    end
  in
  go lo hi

let max_payload_scale ?exec ?config ?(resolution = 0.01) ?(hi = 64.) ~build ()
    =
  let ok scale = schedulable ?exec ?config (build ~scale) in
  let lo = 1. /. 64. in
  if hi < lo then invalid_arg "Sensitivity.max_payload_scale: hi below 1/64";
  if not (ok lo) then None
  else if ok hi then Some hi
  else Some (search_max_float ~lo ~hi ~resolution ~ok)

let max_circ ?exec ?config ~build () =
  let ok circ_scale = schedulable ?exec ?config (build ~circ_scale) in
  let lo = 1. /. 1024. and hi = 1024. in
  if not (ok lo) then None
  else if ok hi then Some hi
  else Some (search_max_float ~lo ~hi ~resolution:0.01 ~ok)
