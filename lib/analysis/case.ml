(* Canonical digest of an analysis case.  Every field the holistic
   analysis reads must appear here — config knobs, topology, switch
   models, flows with specs, routes, priorities and remarks — so equal
   digests imply equal reports. *)

let add_config buf (c : Config.t) =
  Buffer.add_string buf
    (Printf.sprintf "cfg|%s|%b|%d|%d|%d|%d;"
       (Config.variant_to_string c.Config.variant)
       c.Config.tight_jitter c.Config.max_busy_iters c.Config.max_q
       c.Config.horizon c.Config.max_holistic_rounds)

let add_topo buf topo =
  List.iter
    (fun (n : Network.Node.t) ->
      Buffer.add_string buf
        (Printf.sprintf "n|%d|%s|%s;" n.Network.Node.id n.Network.Node.name
           (Network.Node.kind_to_string n.Network.Node.kind)))
    (Network.Topology.nodes topo);
  List.iter
    (fun (l : Network.Link.t) ->
      Buffer.add_string buf
        (Printf.sprintf "l|%d|%d|%d|%d;" l.Network.Link.src
           l.Network.Link.dst l.Network.Link.rate_bps l.Network.Link.prop))
    (Network.Topology.links topo)

let add_switches buf scenario =
  List.iter
    (fun id ->
      let m = Traffic.Scenario.switch_model scenario id in
      Buffer.add_string buf
        (Printf.sprintf "s|%d|%d|%d|%d|%d;" id
           m.Click.Switch_model.ninterfaces m.Click.Switch_model.croute
           m.Click.Switch_model.csend m.Click.Switch_model.processors))
    (Traffic.Scenario.switch_nodes scenario)

let add_flow buf (f : Traffic.Flow.t) =
  Buffer.add_string buf
    (Printf.sprintf "f|%d|%s|%s|%d|" f.Traffic.Flow.id f.Traffic.Flow.name
       (match f.Traffic.Flow.encap with
       | Ethernet.Encap.Udp -> "udp"
       | Ethernet.Encap.Rtp_udp -> "rtp")
       f.Traffic.Flow.priority);
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "%d," n))
    (Network.Route.nodes f.Traffic.Flow.route);
  Buffer.add_char buf '|';
  List.iter
    (fun ((a, b), p) ->
      Buffer.add_string buf (Printf.sprintf "%d-%d:%d," a b p))
    f.Traffic.Flow.remarks;
  Buffer.add_char buf '|';
  Array.iter
    (fun (fr : Gmf.Frame_spec.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d/%d/%d/%d," fr.Gmf.Frame_spec.period
           fr.Gmf.Frame_spec.deadline fr.Gmf.Frame_spec.jitter
           fr.Gmf.Frame_spec.payload_bits))
    (Gmf.Spec.frames f.Traffic.Flow.spec);
  Buffer.add_char buf ';'

let flow_digest (f : Traffic.Flow.t) =
  let buf = Buffer.create 128 in
  add_flow buf f;
  Buffer.contents buf

(* The digest is cached inside the scenario value, keyed by the config's
   canonical serialization: repeated memo probes (one per survive case,
   per admission-gate candidate, per sensitivity probe) stop
   re-serializing the whole scenario — hot at 1,000-flow scale. *)
let digest ~config scenario =
  let cfg = Buffer.create 64 in
  add_config cfg config;
  let cfg = Buffer.contents cfg in
  Traffic.Scenario.cached scenario ~key:("case.digest|" ^ cfg) (fun () ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf cfg;
      add_topo buf (Traffic.Scenario.topo scenario);
      add_switches buf scenario;
      List.iter (add_flow buf) (Traffic.Scenario.flows scenario);
      Digest.to_hex (Digest.string (Buffer.contents buf)))

let shared_memo : Holistic.report Gmf_exec.Memo.t = Gmf_exec.Memo.create ()

(* Exec-layer failures become analysis failures so drivers stay total. *)
let report_of_error err =
  {
    Holistic.verdict =
      Holistic.Analysis_failed
        [
          {
            Result_types.flow_id = -1;
            frame = 0;
            failed_stage = None;
            reason = "exec: " ^ Gmf_exec.error_to_string err;
          };
        ];
    rounds = 0;
    results = [];
  }

let analyze_all ?exec ?(config = Config.default) scenarios =
  Gmf_exec.map_cases ?exec ~memo:shared_memo ~key:(digest ~config)
    ~f:(Holistic.analyze ~config) scenarios
  |> List.map (function Ok r -> r | Error e -> report_of_error e)

let analyze ?exec ?config scenario =
  match analyze_all ?exec ?config [ scenario ] with
  | [ r ] -> r
  | _ -> assert false

let schedulable ?exec ?config scenario =
  Holistic.is_schedulable (analyze ?exec ?config scenario)

type search = {
  found : (int * Holistic.report) option;
  last : Holistic.report option;
  evaluated : int;
}

let search_schedulable ?exec ?(config = Config.default) scenarios =
  let r =
    Gmf_exec.search_first ?exec ~memo:shared_memo ~key:(digest ~config)
      ~f:(Holistic.analyze ~config) ~accept:Holistic.is_schedulable
      scenarios
  in
  {
    found = r.Gmf_exec.found;
    last =
      Option.map
        (function Ok rep -> rep | Error e -> report_of_error e)
        r.Gmf_exec.last;
    evaluated = r.Gmf_exec.evaluated;
  }
