(** Result records produced by the analysis. *)

type stage_response = {
  stage : Stage.t;
  response : Gmf_util.Timeunit.ns;
      (** Upper bound on the stage response time (link stages include the
          propagation delay, per eqs 19 and 33). *)
  busy_len : Gmf_util.Timeunit.ns;  (** Converged busy-period length. *)
  q_count : int;  (** Number of cycle instances examined (Q_i^k). *)
  w_q : int;
      (** Witness: the [q] (whole own cycles ahead of the analyzed
          instance) of the busy-period shape that produced [response]. *)
  w_l : int;
      (** Witness: the [l] (own predecessor frames, repair R8) of that
          shape; always 0 under [Config.Faithful]. *)
  w_last : Gmf_util.Timeunit.ns;
      (** Witness: the converged queuing window w(w_q, w_l).  Together with
          [w_q]/[w_l] this lets {!Gmf_explain.Attribution} re-evaluate every
          term of the stage recurrence and decompose [response] exactly. *)
}

type frame_result = {
  frame : int;
  stages : stage_response list;  (** In traversal order. *)
  total : Gmf_util.Timeunit.ns;
      (** End-to-end bound R_i^k: source jitter + sum of stage responses
          (Figure 6). *)
  deadline : Gmf_util.Timeunit.ns;  (** D_i^k, for convenience. *)
}

type flow_result = {
  flow : Traffic.Flow.t;
  frames : frame_result array;  (** Indexed by GMF frame. *)
}

type failure = {
  flow_id : Traffic.Flow.id;
  frame : int;
  failed_stage : Stage.t option;
      (** [None] when the failure is not tied to one stage (e.g. the
          holistic iteration itself diverged). *)
  reason : string;
}

val slack : frame_result -> Gmf_util.Timeunit.ns
(** [deadline - total]; negative when the bound misses the deadline. *)

val meets_deadline : frame_result -> bool

val worst_frame : flow_result -> frame_result
(** The frame with the smallest slack. *)

val flow_meets_deadlines : flow_result -> bool

val pp_stage_response : Format.formatter -> stage_response -> unit
val pp_frame_result : Format.formatter -> frame_result -> unit
val pp_failure : Format.formatter -> failure -> unit
