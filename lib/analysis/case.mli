(** One analysis case = (flow set, topology, config), evaluated through
    {!Gmf_exec}.

    Every many-case driver (survivability enumeration, sensitivity
    probes, priority search, rerouting candidates, bench sweeps) funnels
    its whole-scenario analyses through this module so that

    + the backend is pluggable ([?exec], {!Gmf_exec.seq} by default);
    + identical cases are computed once: results are memoized in a
      process-wide table keyed by {!digest}, so e.g. two survive cases
      that shed down to the same remainder set, or a sensitivity probe
      revisiting a scale, reuse the earlier fixpoint.

    Exec-layer failures (per-case timeout, worker crash) degrade to an
    [Analysis_failed] report carrying an ["exec: ..."] reason, so
    drivers stay total and render rejections uniformly. *)

val digest : config:Config.t -> Traffic.Scenario.t -> string
(** Hex digest of the canonical serialization of (config, topology —
    nodes and links with rates and propagation delays —, switch models,
    and every flow's id, name, encapsulation, priority, route, remarks
    and frame specs).  Two scenarios with equal digests are analyzed
    identically.  Cached per (scenario value, config) via
    {!Traffic.Scenario.cached}: the serialization runs once, later memo
    probes are a table lookup. *)

val flow_digest : Traffic.Flow.t -> string
(** The canonical per-flow fragment of {!digest} (id, name,
    encapsulation, priority, route, remarks, frame specs).  Two flows
    with equal fragments are interchangeable for the analysis; {!Delta}
    diffs flow sets with it. *)

val shared_memo : Holistic.report Gmf_exec.Memo.t
(** The process-wide report cache every entry point below shares. *)

val analyze_all :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  Traffic.Scenario.t list ->
  Holistic.report list
(** Analyze every scenario, in order, through the executor and the
    shared memo. *)

val analyze :
  ?exec:Gmf_exec.t -> ?config:Config.t -> Traffic.Scenario.t ->
  Holistic.report
(** Single-case convenience: memoized {!Holistic.analyze}. *)

val schedulable :
  ?exec:Gmf_exec.t -> ?config:Config.t -> Traffic.Scenario.t -> bool
(** [Holistic.is_schedulable (analyze scenario)]. *)

type search = {
  found : (int * Holistic.report) option;
      (** Smallest index whose report is schedulable, with the report. *)
  last : Holistic.report option;
      (** Report of the last case sequential search would evaluate. *)
  evaluated : int;  (** Sequential-equivalent evaluation count. *)
}

val search_schedulable :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  Traffic.Scenario.t list ->
  search
(** First-match search for a schedulable scenario, deterministic across
    backends (see {!Gmf_exec.search_first}). *)
