(** Incremental ("delta") re-analysis against a converged base fixpoint.

    Every what-if driver in the system — the k-failure survivability
    sweep, the admission session's remove/update/fail events, the daemon
    workers behind them — evaluates scenarios that differ from an
    already-analyzed base by a handful of flows (a reroute, a shed, an
    update).  This module re-runs the holistic fixpoint only over the
    edit's {e interference closure} and certifies every other flow as
    provably untouched:

    + {b Diff.}  Base and target flow sets are diffed by id; a flow
      counts as changed when its canonical serialization
      ({!Case.flow_digest}) differs (physical equality short-circuits).
      A target whose topology, switch models or convergence status rule
      the comparison out falls back to a cold run
      ([stats.cold_fallback]).
    + {b Closure.}  Two flows interfere only where their routes share a
      node (exactly an {!Gmf_precheck.Igraph} edge), so the edit's blast
      radius is the node-sharing transitive closure of the changed flows
      — computed by a node-indexed BFS over the {e union} of base and
      target flow sets (both versions of every changed flow seed it).
      The target flows inside the closure form a union of complete
      interference components of the target.
    + {b Fixpoint.}  Only the closure is re-analyzed, as a
      {!Sharded.sub_scenario} restriction.  A pure-growth edit (flows
      added, none removed or changed) warm-starts from the base jitter
      entries of the closure flows: the base fixed point sits below the
      new one, so the monotone squeeze of {!Holistic.run_from} converges
      to the same least fixed point from below.  Any shrinking or mixed
      edit restarts the closure from source jitters — iterating down
      from a stale state is {e not} guaranteed to reach the least fixed
      point, so soundness-ambiguous seeds are never used.
    + {b Certificate.}  Flows outside the closure keep their base
      results — the very same report records, never recomputed (the
      tests check physical equality) — and are listed in
      [d_untouched].  Their interference components are structurally
      unchanged, so their least fixed point is unchanged.

    Verdicts of a merged report are rebuilt exactly as {!Sharded} does:
    closure-run failures and divergence win, otherwise
    {!Holistic.deadline_misses} over the merged results decides.

    Telemetry: [delta.runs], [delta.closure_flows], [delta.flows_skipped],
    [delta.rounds_saved] (estimate: base rounds minus closure rounds) and
    [delta.cold_fallbacks] in the default registry. *)

type base
(** A converged base fixpoint: scenario, config, jitter state, report. *)

val make_base :
  ?lint_clean:bool ->
  config:Config.t ->
  scenario:Traffic.Scenario.t ->
  state:Jitter_state.t ->
  report:Holistic.report ->
  unit ->
  base
(** Wrap an already-computed fixpoint (e.g. an admission session's
    committed state) as a delta base, at no analysis cost.  [state] must
    be the converged jitter state of [report] on [scenario] under
    [config]; a non-converged [report] ([Analysis_failed] /
    [No_fixed_point]) yields a base every {!analyze} call falls back
    cold from.  [lint_clean] (default [true]) asserts the base scenario
    passes the {!Gmf_lint} error gate, which lets [analyze ~lint:true]
    lint only the closure restriction; pass [false] when unknown and the
    full target is linted instead. *)

val compute_base : ?config:Config.t -> Traffic.Scenario.t -> base
(** Cold-analyze [scenario] ({!Holistic.run}) and wrap the result; also
    records whether the scenario lints clean. *)

val base_report : base -> Holistic.report
val base_state : base -> Jitter_state.t
val base_ok : base -> bool
(** Whether the base converged — [false] means every {!analyze} against
    it falls back cold. *)

val base_digest : base -> string
(** {!Case.digest} of the base scenario under the base config — the
    base half of a delta-memo key (cached inside the scenario value). *)

type stats = {
  total_flows : int;  (** Flows in the target scenario. *)
  closure_flows : int;  (** Target flows the fixpoint re-ran over. *)
  skipped_flows : int;  (** Certified untouched, results carried over. *)
  rounds : int;  (** Holistic rounds actually spent on the closure. *)
  rounds_saved : int;
      (** Estimate of avoided work: base rounds minus closure rounds
          (never negative, 0 on a cold fallback). *)
  cold_fallback : bool;
      (** The comparison was ruled out (structure changed, base not
          converged) and the target was analyzed cold. *)
  warm_seeded : bool;
      (** Pure-growth edit: the closure fixpoint started from the base
          jitter entries instead of source jitters. *)
}

type result = {
  d_report : Holistic.report;
      (** Merged report over the full target flow set, results in
          scenario flow order — untouched flows carry their base result
          records, closure flows their re-converged ones. *)
  d_state : Jitter_state.t;
      (** Merged converged jitter state of the target — the warm-start
          seed for the next edit. *)
  d_untouched : Traffic.Flow.id list;
      (** The certificate: ids (ascending) whose fixed point is provably
          unchanged — results copied, never recomputed. *)
  d_stats : stats;
}

val interference_closure :
  seeds:Traffic.Flow.t list ->
  Traffic.Flow.t list ->
  (Traffic.Flow.id, unit) Hashtbl.t
(** Ids of the given flows transitively reachable from any seed by node
    sharing (routes meeting at a node — exactly an {!Gmf_precheck.Igraph}
    edge); always contains the seeds' ids.  Node-indexed BFS, O(total
    route length).  Exposed for callers that need the blast radius
    without a full delta run; {!analyze} uses it internally. *)

val analyze :
  ?lint:bool -> ?precheck:bool -> base -> Traffic.Scenario.t -> result
(** [analyze base target] incrementally re-analyzes [target] against
    [base] (under the base's config).  With [~lint:true] the closure
    restriction is run through the {!Gmf_lint} error gate first (sound
    when the base lints clean: an error involves only flows of changed
    components, and a component is wholly inside or outside the
    closure); errors yield an [Analysis_failed] report with zero rounds,
    mirroring the shed-without-fixpoint fast path of the survive loop.

    [precheck] (default [false]) routes a shrinking or mixed edit's cold
    closure restart through the precheck-guided {!Sharded.analyze}
    instead of a monolithic {!Holistic.run}: flows decided statically
    skip the fixpoint, matching the cold survive engine's own path.
    The schedulability class, fates and matrices are unchanged
    (precheck is schedulability-exact), but closure flows decided
    statically carry certified ceilings instead of converged bounds and
    contribute no jitter state — callers that reuse [d_state] as the
    committed session state (exact bounds required) must leave it off.

    Exactness: the merged verdict and bounds equal a cold analysis of
    [target] — the closure is a union of complete interference
    components (sharding property), untouched components keep their
    least fixed point, and the closure either restarts from source
    jitters or (pure growth) squeezes up from below it. *)
