type stats = {
  components : int;
  components_run : int;
  flows : int;
  flows_infeasible : int;
  flows_certified : int;
}

let m_components_run =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "precheck.components_run"

let m_fixpoints_skipped =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "precheck.fixpoints_skipped"

(* The component keeps the original topology and the switch models of the
   nodes its member routes traverse: the stage recurrences of the member
   flows only ever consult flows_on / entering sets, which the membership
   filter restricts identically, and they never look at a switch off the
   member routes — so dropping unused models keeps the result byte-equal
   while the per-component build stays proportional to the component, not
   to the whole topology. *)
let sub_scenario scenario flow_ids =
  let keep = Hashtbl.create (List.length flow_ids) in
  List.iter (fun id -> Hashtbl.replace keep id ()) flow_ids;
  let flows =
    List.filter
      (fun f -> Hashtbl.mem keep f.Traffic.Flow.id)
      (Traffic.Scenario.flows scenario)
  in
  let used = Hashtbl.create 16 in
  List.iter
    (fun (f : Traffic.Flow.t) ->
      List.iter
        (fun n -> Hashtbl.replace used n ())
        (Network.Route.intermediate_switches f.Traffic.Flow.route))
    flows;
  let switches =
    Hashtbl.fold
      (fun n () acc -> (n, Traffic.Scenario.switch_model scenario n) :: acc)
      used []
    |> List.sort compare
  in
  Traffic.Scenario.make ~switches ~topo:(Traffic.Scenario.topo scenario)
    ~flows ()

let stage_of_inequality = function
  | Gmf_precheck.Precheck.Demand_floor { stage; _ }
  | Gmf_precheck.Precheck.One_shot_bound { stage; _ } ->
      Some stage
  | Gmf_precheck.Precheck.Eq20_link_overload _
  | Gmf_precheck.Precheck.Eq34_35_ingress_overload _ ->
      None

let frame_of_inequality = function
  | Gmf_precheck.Precheck.Demand_floor { frame; _ }
  | Gmf_precheck.Precheck.One_shot_bound { frame; _ } ->
      frame
  | Gmf_precheck.Precheck.Eq20_link_overload _
  | Gmf_precheck.Precheck.Eq34_35_ingress_overload _ ->
      0

let failure_of_certificate flow_id (cert : Gmf_precheck.Precheck.certificate) =
  {
    Result_types.flow_id;
    frame = frame_of_inequality cert.Gmf_precheck.Precheck.inequality;
    failed_stage = stage_of_inequality cert.Gmf_precheck.Precheck.inequality;
    reason =
      Format.asprintf "statically infeasible: %a"
        Gmf_precheck.Precheck.pp_certificate cert;
  }

(* A certified flow never enters any fixpoint: its result carries the
   certified per-frame ceilings with no stage breakdown. *)
let certified_result flow ceilings =
  let deadlines = Gmf.Spec.deadlines flow.Traffic.Flow.spec in
  let frames =
    Array.mapi
      (fun k total ->
        { Result_types.frame = k; stages = []; total; deadline = deadlines.(k) })
      ceilings
  in
  { Result_types.flow; frames }

let analyze ?exec ?(skip_decided = true) ?(config = Config.default) scenario =
  let pre = Gmf_precheck.Precheck.run ?exec ~config scenario in
  let infeasible, certified =
    if skip_decided then
      (Gmf_precheck.Precheck.infeasible pre, Gmf_precheck.Precheck.certified pre)
    else ([], [])
  in
  let to_run =
    if skip_decided then Gmf_precheck.Precheck.undecided_components pre
    else pre.Gmf_precheck.Precheck.components
  in
  let scenario_flows = Traffic.Scenario.flows scenario in
  let flow_by_id id = Traffic.Scenario.flow scenario id in
  let subs =
    List.map
      (fun (c : Gmf_precheck.Igraph.component) ->
        sub_scenario scenario c.Gmf_precheck.Igraph.flow_ids)
      to_run
  in
  let reports = Case.analyze_all ?exec ~config subs in
  if Gmf_obs.Metrics.enabled Gmf_obs.Metrics.default then begin
    Gmf_obs.Metrics.incr ~by:(List.length to_run) m_components_run;
    Gmf_obs.Metrics.incr
      ~by:(pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.components
         - List.length to_run)
      m_fixpoints_skipped
  end;
  (* Merge: results keyed by flow id, emitted in scenario flow order so the
     union is ordered exactly like the monolithic run. *)
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun (r : Holistic.report) ->
      List.iter
        (fun res ->
          Hashtbl.replace by_id res.Result_types.flow.Traffic.Flow.id res)
        r.Holistic.results)
    reports;
  List.iter
    (fun (v : Gmf_precheck.Precheck.flow_verdict) ->
      match v.Gmf_precheck.Precheck.ceilings with
      | None -> ()
      | Some ceilings ->
          let flow = flow_by_id v.Gmf_precheck.Precheck.flow_id in
          Hashtbl.replace by_id flow.Traffic.Flow.id
            (certified_result flow ceilings))
    certified;
  let results =
    List.filter_map
      (fun f -> Hashtbl.find_opt by_id f.Traffic.Flow.id)
      scenario_flows
  in
  let position =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun i f -> Hashtbl.replace tbl f.Traffic.Flow.id i)
      scenario_flows;
    fun (f : Result_types.failure) ->
      match Hashtbl.find_opt tbl f.Result_types.flow_id with
      | Some i -> i
      | None -> max_int (* exec-layer failures carry flow_id = -1 *)
  in
  let failures =
    List.map
      (fun (v : Gmf_precheck.Precheck.flow_verdict) ->
        match v.Gmf_precheck.Precheck.verdict with
        | Gmf_precheck.Precheck.Infeasible cert ->
            failure_of_certificate v.Gmf_precheck.Precheck.flow_id cert
        | _ -> assert false)
      infeasible
    @ List.concat_map
        (fun (r : Holistic.report) ->
          match r.Holistic.verdict with
          | Holistic.Analysis_failed fs -> fs
          | _ -> [])
        reports
    |> List.stable_sort (fun a b -> compare (position a) (position b))
  in
  let rounds =
    List.fold_left (fun acc r -> max acc r.Holistic.rounds) 0 reports
  in
  let verdict =
    match failures with
    | _ :: _ -> Holistic.Analysis_failed failures
    | [] -> (
        let diverged =
          List.filter_map
            (fun (r : Holistic.report) ->
              match r.Holistic.verdict with
              | Holistic.No_fixed_point n -> Some n
              | _ -> None)
            reports
        in
        match diverged with
        | _ :: _ -> Holistic.No_fixed_point (List.fold_left max 0 diverged)
        | [] -> (
            match Holistic.deadline_misses results with
            | [] -> Holistic.Schedulable
            | misses -> Holistic.Deadline_miss misses))
  in
  let stats =
    {
      components =
        pre.Gmf_precheck.Precheck.stats.Gmf_precheck.Igraph.components;
      components_run = List.length to_run;
      flows = List.length scenario_flows;
      flows_infeasible = List.length infeasible;
      flows_certified = List.length certified;
    }
  in
  ({ Holistic.verdict; rounds; results }, pre, stats)

let pp_stats fmt s =
  Format.fprintf fmt
    "%d/%d component%s fixpointed (%d flows: %d infeasible, %d certified \
     statically)"
    s.components_run s.components
    (if s.components = 1 then "" else "s")
    s.flows s.flows_infeasible s.flows_certified
