(** Knobs of the schedulability analysis.

    Re-export of {!Analysis_config} (the definitions live below [Analysis]
    so that static passes such as [Gmf_lint] can inspect the configuration
    without depending on the analyzer).  See {!Analysis_config} for the
    full documentation of the [Faithful]/[Repaired] variants and the
    jitter-propagation rule. *)

type variant = Analysis_config.variant = Faithful | Repaired

type t = Analysis_config.t = {
  variant : variant;
  tight_jitter : bool;
  max_busy_iters : int;
  max_q : int;
  horizon : Gmf_util.Timeunit.ns;
  max_holistic_rounds : int;
}

val default : t
(** [Repaired] variant, 10^4 busy iterations, Q cap 4096, 100 s horizon,
    64 holistic rounds. *)

val faithful : t
(** [default] with [variant = Faithful]. *)

val tight : t
(** [default] with [tight_jitter = true]. *)

val variant_to_string : variant -> string

val pp : Format.formatter -> t -> unit
