type demand_kind = Time | Count

type t = {
  scenario : Traffic.Scenario.t;
  config : Config.t;
  mutable jitters : Jitter_state.t;
  demands :
    (Traffic.Flow.id * Network.Node.id * Network.Node.id * demand_kind,
     Gmf.Demand.t)
    Hashtbl.t;
}

let install_source_jitters scenario state =
  List.iter
    (fun flow ->
      let route = flow.Traffic.Flow.route in
      let source = Network.Route.source route in
      let stage =
        Stage.First_link (source, Network.Route.succ route source)
      in
      let jitters = Gmf.Spec.jitters flow.Traffic.Flow.spec in
      Array.iteri
        (fun frame value ->
          Jitter_state.set state ~flow:flow.Traffic.Flow.id ~stage ~frame
            value)
        jitters)
    (Traffic.Scenario.flows scenario)

let create ?(config = Config.default) scenario =
  let jitters = Jitter_state.create () in
  install_source_jitters scenario jitters;
  { scenario; config; jitters; demands = Hashtbl.create 64 }

let scenario t = t.scenario
let config t = t.config
let jitters t = t.jitters

let reset_jitters t =
  let fresh = Jitter_state.create () in
  install_source_jitters t.scenario fresh;
  t.jitters <- fresh

let snapshot t = Jitter_state.copy t.jitters

let restore t state =
  let fresh = Jitter_state.copy state in
  install_source_jitters t.scenario fresh;
  t.jitters <- fresh

let params t flow ~src ~dst = Traffic.Scenario.params t.scenario flow ~src ~dst

let demand t flow ~src ~dst kind =
  let key = (flow.Traffic.Flow.id, src, dst, kind) in
  match Hashtbl.find_opt t.demands key with
  | Some d -> d
  | None ->
      let p = params t flow ~src ~dst in
      let d =
        match kind with
        | Time -> Traffic.Link_params.time_demand p
        | Count -> Traffic.Link_params.count_demand p
      in
      Hashtbl.replace t.demands key d;
      d

(* The paper's MXS (eq 10) clamps each window's demand to the interval
   length, which makes MX(0) = 0: with all jitters zero, the queuing-time
   recurrences then accept w = 0 as a fixed point and report no interference
   at all.  The Repaired variant therefore uses the uncapped window maximum —
   the classical request-bound reading, where a competing frame arriving at
   the critical instant contributes its full transmission time (repair R7 in
   DESIGN.md). *)
let mx t flow ~src ~dst ~dt =
  let capped =
    match t.config.Config.variant with
    | Config.Faithful -> true
    | Config.Repaired -> false
  in
  Gmf.Demand.bound (demand t flow ~src ~dst Time) ~capped dt

let nx t flow ~src ~dst ~dt =
  Gmf.Demand.bound (demand t flow ~src ~dst Count) ~capped:false dt

let extra t flow ~stage =
  Jitter_state.extra t.jitters ~flow:flow.Traffic.Flow.id
    ~n_frames:(Traffic.Flow.n flow) ~stage

let set_jitter t flow ~frame ~stage value =
  Jitter_state.set t.jitters ~flow:flow.Traffic.Flow.id ~stage ~frame value

let get_jitter t flow ~frame ~stage =
  Jitter_state.get t.jitters ~flow:flow.Traffic.Flow.id ~stage ~frame
