(** Shared state of one analysis run: the scenario, the configuration, the
    holistic jitter state and memoized demand tables. *)

type t

val create : ?config:Config.t -> Traffic.Scenario.t -> t
(** [create ?config scenario] initializes the context.  The jitter state
    starts with every flow's source jitter installed at its first-link stage
    and zero everywhere else — the starting point of the holistic iteration
    (Section 3.5). *)

val scenario : t -> Traffic.Scenario.t
val config : t -> Config.t
val jitters : t -> Jitter_state.t

val reset_jitters : t -> unit
(** Restores the initial jitter state (source jitters only). *)

val snapshot : t -> Jitter_state.t
(** A deep copy of the current jitter state.  Taken after a converged
    {!Holistic} run it is the fixed point of the scenario — the seed an
    admission session hands back to {!restore} to warm-start the next
    decision. *)

val restore : t -> Jitter_state.t -> unit
(** [restore t state] replaces the context's jitters with a copy of
    [state] and (re-)installs every flow's source jitters on top, so a
    state captured on a {e smaller} flow set is completed with the first
    entries of any flow it has never seen.  The argument is not aliased;
    later mutations of the context leave it intact. *)

val mx :
  t -> Traffic.Flow.t -> src:Network.Node.id -> dst:Network.Node.id ->
  dt:Gmf_util.Timeunit.ns -> Gmf_util.Timeunit.ns
(** MX(tau_j, N1, N2, dt) (eq 11): link-time demand bound of the flow on the
    link during an interval of length [dt].  Under [Config.Faithful] the
    per-window demand is clamped to [dt] as eq (10) writes it; under
    [Config.Repaired] the clamp is dropped (request-bound reading, repair
    R7) so zero-jitter interference is not lost. *)

val nx :
  t -> Traffic.Flow.t -> src:Network.Node.id -> dst:Network.Node.id ->
  dt:Gmf_util.Timeunit.ns -> int
(** NX(tau_j, N1, N2, dt) (eq 13): Ethernet-frame count bound. *)

val extra : t -> Traffic.Flow.t -> stage:Stage.t -> Gmf_util.Timeunit.ns
(** extra_j at a stage: the flow's maximum per-frame jitter there. *)

val set_jitter :
  t -> Traffic.Flow.t -> frame:int -> stage:Stage.t ->
  Gmf_util.Timeunit.ns -> unit

val get_jitter :
  t -> Traffic.Flow.t -> frame:int -> stage:Stage.t -> Gmf_util.Timeunit.ns

val params :
  t -> Traffic.Flow.t -> src:Network.Node.id -> dst:Network.Node.id ->
  Traffic.Link_params.t
