type decision = {
  admitted : bool;
  report : Holistic.report;
  diagnostics : Gmf_diag.t list;
}

(* A lint error becomes a synthetic analysis failure so existing report
   consumers (CLI, experiments) render rejections uniformly. *)
let failure_of_diag (d : Gmf_diag.t) =
  let flow_id, frame =
    match d.Gmf_diag.subject with
    | Gmf_diag.Flow { id; _ } | Gmf_diag.Node { id; _ } -> (id, 0)
    | Gmf_diag.Frame { id; frame; _ } -> (id, frame)
    | Gmf_diag.Scenario | Gmf_diag.Config | Gmf_diag.Link _ -> (-1, 0)
  in
  {
    Result_types.flow_id;
    frame;
    failed_stage = None;
    reason = Gmf_diag.to_string d;
  }

let check ?exec ?config scenario =
  let lint = Gmf_lint.Lint.run ?config scenario in
  let diagnostics = lint.Gmf_lint.Lint.diagnostics in
  match Gmf_lint.Lint.errors lint with
  | _ :: _ as errors ->
      (* Reject statically: the holistic fixpoint is never entered. *)
      let report =
        {
          Holistic.verdict =
            Holistic.Analysis_failed (List.map failure_of_diag errors);
          rounds = 0;
          results = [];
        }
      in
      { admitted = false; report; diagnostics }
  | [] ->
      (* Lint is clean: run the precheck-guided sharded analysis.  Decided
         flows never enter the fixpoint; the undecided components run
         independently (and on [exec]'s backend). *)
      let report, pre, _stats = Sharded.analyze ?exec ?config scenario in
      let diagnostics =
        diagnostics @ Gmf_precheck.Precheck.diagnostics pre
      in
      { admitted = Holistic.is_schedulable report; report; diagnostics }

let binding_failure (d : decision) =
  match d.report.Holistic.verdict with
  | Holistic.Schedulable -> None
  | Holistic.No_fixed_point n ->
      Some
        {
          Result_types.flow_id = -1;
          frame = 0;
          failed_stage = None;
          reason =
            Printf.sprintf "no jitter fixed point after %d rounds" n;
        }
  | Holistic.Analysis_failed [] -> None
  | Holistic.Analysis_failed (f :: _) -> Some f
  | Holistic.Deadline_miss fs -> (
      (* The binding constraint is the deadline violated by the most:
         smallest (most negative) slack among the missing frames. *)
      let slack_of (f : Result_types.failure) =
        match
          List.find_opt
            (fun r ->
              r.Result_types.flow.Traffic.Flow.id = f.Result_types.flow_id)
            d.report.Holistic.results
        with
        | Some r when f.Result_types.frame < Array.length r.Result_types.frames
          ->
            Result_types.slack r.Result_types.frames.(f.Result_types.frame)
        | _ -> max_int
      in
      match fs with
      | [] -> None
      | f0 :: rest ->
          Some
            (List.fold_left
               (fun best f ->
                 if slack_of f < slack_of best then f else best)
               f0 rest))

let rebuild scenario extra_flows =
  Traffic.Scenario.make ~topo:(Traffic.Scenario.topo scenario)
    ~flows:(Traffic.Scenario.flows scenario @ extra_flows)
    ()

let reject_with diagnostics =
  let errors = Gmf_diag.at_least Gmf_diag.Error diagnostics in
  let report =
    {
      Holistic.verdict = Holistic.Analysis_failed (List.map failure_of_diag errors);
      rounds = 0;
      results = [];
    }
  in
  { admitted = false; report; diagnostics }

let duplicate_id_diag ~candidate ~existing =
  Gmf_diag.error ~code:"GMF014"
    ~subject:
      (Gmf_diag.Flow
         {
           id = candidate.Traffic.Flow.id;
           name = candidate.Traffic.Flow.name;
         })
    ~suggestion:"allocate an unused id for the candidate"
    "candidate id %d is already admitted (flow %S)" candidate.Traffic.Flow.id
    existing.Traffic.Flow.name

let find_duplicate scenario candidate =
  List.find_opt
    (fun f -> f.Traffic.Flow.id = candidate.Traffic.Flow.id)
    (Traffic.Scenario.flows scenario)

let admit_exn ?exec ?config scenario ~candidate =
  check ?exec ?config (rebuild scenario [ candidate ])

(* The gate (e.g. Gmf_faults.Survive.admission_gate, injected by the
   caller — depending on it here would be a cycle) only runs once the
   extended set is schedulable: a rejection already stands on its own,
   and the gate's k-failure sweep is the expensive part. *)
let admit ?exec ?config ?gate scenario ~candidate =
  match find_duplicate scenario candidate with
  | Some existing -> reject_with [ duplicate_id_diag ~candidate ~existing ]
  | None -> (
      let decision = admit_exn ?exec ?config scenario ~candidate in
      match gate with
      | None -> decision
      | Some _ when not decision.admitted -> decision
      | Some gate -> (
          match gate (rebuild scenario [ candidate ]) with
          | [] -> decision
          | diags -> reject_with (decision.diagnostics @ diags)))

let admit_greedily ?config ~topo ~switches candidates =
  let try_set flows =
    let scenario = Traffic.Scenario.make ~switches ~topo ~flows () in
    (check ?config scenario).admitted
  in
  let rec go accepted rejected = function
    | [] -> (List.rev accepted, List.rev rejected)
    | candidate :: rest ->
        let attempt = List.rev (candidate :: accepted) in
        if try_set attempt then go (candidate :: accepted) rejected rest
        else go accepted (candidate :: rejected) rest
  in
  go [] [] candidates
