(* Re-export of the shared stage vocabulary: the type moved below the
   analysis library so the static pre-analysis (Gmf_precheck) and the
   fixpoint agree on stage identity (jitter-state keys included). *)

type t = Gmf_precheck.Stage_key.t =
  | First_link of Network.Node.id * Network.Node.id
  | Ingress of Network.Node.id
  | Egress of Network.Node.id * Network.Node.id

let equal = Gmf_precheck.Stage_key.equal
let compare = Gmf_precheck.Stage_key.compare
let hash = Gmf_precheck.Stage_key.hash
let stages_of_route = Gmf_precheck.Stage_key.stages_of_route
let pp = Gmf_precheck.Stage_key.pp
