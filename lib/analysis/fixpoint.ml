open Gmf_util

type outcome =
  | Converged of { value : Timeunit.ns; iters : int }
  | Diverged of string

(* Convergence telemetry, recorded into the process-wide registry.  With
   observability disabled (the default) each [iterate] call pays one
   load-and-branch. *)
let m_calls = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "fixpoint.calls"

let m_iters_total =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "fixpoint.iters.total"

let m_iters =
  Gmf_obs.Metrics.histogram Gmf_obs.Metrics.default "fixpoint.iters"

let m_div_horizon =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "fixpoint.diverged.horizon"

let m_div_cap =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "fixpoint.diverged.cap"

let iterate ~f ~seed ~max_iters ~horizon =
  if max_iters <= 0 then invalid_arg "Fixpoint.iterate: non-positive cap";
  if seed < 0 then invalid_arg "Fixpoint.iterate: negative seed";
  Gmf_obs.Metrics.incr m_calls;
  let rec go t iters =
    if t > horizon then begin
      Gmf_obs.Metrics.incr m_div_horizon;
      Diverged
        (Printf.sprintf "exceeded horizon (%s)" (Timeunit.to_string horizon))
    end
    else if iters >= max_iters then begin
      Gmf_obs.Metrics.incr m_div_cap;
      Diverged (Printf.sprintf "no fixed point after %d iterations" max_iters)
    end
    else begin
      let t' = f t in
      if t' = t then begin
        let iters = iters + 1 in
        Gmf_obs.Metrics.incr ~by:iters m_iters_total;
        Gmf_obs.Metrics.observe m_iters iters;
        Converged { value = t; iters }
      end
      else go t' (iters + 1)
    end
  in
  go seed 0

let map o g =
  match o with
  | Converged c -> Converged { c with value = g c.value }
  | d -> d

let pp fmt = function
  | Converged { value; iters } ->
      Format.fprintf fmt "converged(%a, %d iter%s)" Timeunit.pp value iters
        (if iters = 1 then "" else "s")
  | Diverged msg -> Format.fprintf fmt "diverged(%s)" msg
