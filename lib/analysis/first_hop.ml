let check_frame flow frame =
  if frame < 0 || frame >= Traffic.Flow.n flow then
    invalid_arg "First_hop.analyze: frame index out of range"

let link_of flow =
  let route = flow.Traffic.Flow.route in
  let s = Network.Route.source route in
  (s, Network.Route.succ route s)

let analyze ctx ~flow ~frame =
  check_frame flow frame;
  let s, d = link_of flow in
  let stage = Stage.First_link (s, d) in
  let scenario = Ctx.scenario ctx in
  let own = Ctx.params ctx flow ~src:s ~dst:d in
  let c_k = own.Traffic.Link_params.c.(frame) in
  let csum_i = Traffic.Link_params.csum own in
  let tsum_i = Traffic.Flow.tsum flow in
  let prop = own.Traffic.Link_params.link.Network.Link.prop in
  let periods = Gmf.Spec.periods flow.Traffic.Flow.spec in
  let all = Traffic.Scenario.flows_on scenario ~src:s ~dst:d in
  let others = List.filter (fun j -> j.Traffic.Flow.id <> flow.Traffic.Flow.id) all in
  (* Every interfering flow's jitter on this link; the first link of flow i
     is the first link of every flow sharing it (endhosts do not relay). *)
  let extra j = Ctx.extra ctx j ~stage in
  let interference flows dt =
    List.fold_left
      (fun acc j -> acc + Ctx.mx ctx j ~src:s ~dst:d ~dt:(dt + extra j))
      0 flows
  in
  (* Own demand (in link time) of the l predecessors of frame k, and the
     minimum time by which they precede it (repair R8). *)
  let pre_c l = Stage_common.window_before own.Traffic.Link_params.c ~k:frame ~len:l in
  let pre_t l = Stage_common.window_before periods ~k:frame ~len:l in
  Stage_common.run ~ctx ~stage ~flow ~frame ~busy_seed:c_k
    ~busy_step:(fun t -> interference all t)
    ~w_base:(fun ~q ~l -> (q * csum_i) + pre_c l)
    ~w_step:(fun ~q ~l w -> (q * csum_i) + pre_c l + interference others w)
    ~finish:(fun ~q ~l ~w -> w - ((q * tsum_i) + pre_t l) + c_k + prop)

let utilization_condition ctx ~flow =
  let s, d = link_of flow in
  Gmf_precheck.Static_tests.link_utilization (Ctx.scenario ctx) ~src:s ~dst:d
