(** Sensitivity analysis: capacity-planning searches on top of the
    schedulability test.

    A network operator rarely asks only "is this flow set schedulable?";
    the follow-up questions are "how much slower could the links be?",
    "how much more traffic fits?", and "how slow a switch CPU can I buy?".
    Each search below binary-searches the schedulability frontier; the
    predicate is monotone in every searched parameter (more capacity never
    breaks a schedulable set), which the test suite checks.

    Probes are evaluated through {!Case} (and therefore {!Gmf_exec}):
    [?exec] supplies the per-case timeout, and revisited probes hit the
    shared report memo.  The bisections themselves stay sequential —
    every probe depends on the previous verdict. *)

val min_link_rate :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  ?lo:int ->
  ?hi:int ->
  build:(rate_bps:int -> Traffic.Scenario.t) ->
  unit ->
  int option
(** [min_link_rate ~build ()] is the smallest uniform link bit rate (within
    [lo, hi], default 1 Mbit/s .. 10 Gbit/s, resolution 1%) for which
    [build ~rate_bps] is schedulable, or [None] if even [hi] is not.
    Raises [Invalid_argument] if [lo <= 0] or [lo > hi]. *)

val max_payload_scale :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  ?resolution:float ->
  ?hi:float ->
  build:(scale:float -> Traffic.Scenario.t) ->
  unit ->
  float option
(** [max_payload_scale ~build ()] is the largest traffic scale factor in
    (0, [hi]] (default [hi] = 64, to the given relative [resolution],
    default 0.01) for which [build ~scale] is schedulable; [None] if even
    the smallest probe (1/64) fails.  Rejection hints pass [~hi:1.0] to ask
    "how much would this flow have to shrink?".  Raises [Invalid_argument]
    when [hi < 1/64]. *)

val max_circ :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  build:(circ_scale:float -> Traffic.Scenario.t) ->
  unit ->
  float option
(** [max_circ ~build ()] is the largest multiplier on the switch task costs
    (in (0, 1024], 1 = the paper's measured costs) that keeps [build]
    schedulable — i.e. how slow the switch CPU may be.  [None] if even
    scale 1/1024 fails. *)
