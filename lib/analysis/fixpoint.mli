(** Integer fixed-point iteration for the busy-period and queuing-time
    recurrences (eqs 15, 17, 22, 24, 29, 31).

    All recurrences have the shape [t_{v+1} = f t_v] with [f] monotone in
    its argument, so over the integers the iteration either reaches an exact
    fixed point or crosses the horizon.

    Every call feeds the convergence telemetry of {!Gmf_obs.Metrics.default}
    (counters [fixpoint.calls], [fixpoint.iters.total],
    [fixpoint.diverged.horizon], [fixpoint.diverged.cap]; histogram
    [fixpoint.iters]) — all no-ops while the registry is disabled. *)

type outcome =
  | Converged of { value : Gmf_util.Timeunit.ns; iters : int }
      (** [f value = value] was reached; [iters] is the number of
          evaluations of [f] performed (at least 1). *)
  | Diverged of string
      (** The horizon or the iteration cap was exceeded; the message says
          which. *)

val iterate :
  f:(Gmf_util.Timeunit.ns -> Gmf_util.Timeunit.ns) ->
  seed:Gmf_util.Timeunit.ns ->
  max_iters:int ->
  horizon:Gmf_util.Timeunit.ns ->
  outcome
(** [iterate ~f ~seed ~max_iters ~horizon] runs the recurrence from [seed].
    Raises [Invalid_argument] if [max_iters <= 0] or [seed < 0]. *)

val map : outcome -> (Gmf_util.Timeunit.ns -> Gmf_util.Timeunit.ns) -> outcome
(** [map o g] applies [g] to a converged value (keeping its [iters]). *)

val pp : Format.formatter -> outcome -> unit
