open Gmf_util

type stage_response = {
  stage : Stage.t;
  response : Timeunit.ns;
  busy_len : Timeunit.ns;
  q_count : int;
  w_q : int;
  w_l : int;
  w_last : Timeunit.ns;
}

type frame_result = {
  frame : int;
  stages : stage_response list;
  total : Timeunit.ns;
  deadline : Timeunit.ns;
}

type flow_result = {
  flow : Traffic.Flow.t;
  frames : frame_result array;
}

type failure = {
  flow_id : Traffic.Flow.id;
  frame : int;
  failed_stage : Stage.t option;
  reason : string;
}

let slack fr = fr.deadline - fr.total
let meets_deadline fr = fr.total <= fr.deadline

let worst_frame res =
  if Array.length res.frames = 0 then
    invalid_arg "Result_types.worst_frame: no frames";
  Array.fold_left
    (fun acc fr -> if slack fr < slack acc then fr else acc)
    res.frames.(0) res.frames

let flow_meets_deadlines res = Array.for_all meets_deadline res.frames

let pp_stage_response fmt sr =
  Format.fprintf fmt "%a: R=%a (busy=%a, Q=%d)" Stage.pp sr.stage Timeunit.pp
    sr.response Timeunit.pp sr.busy_len sr.q_count

let pp_frame_result fmt (fr : frame_result) =
  Format.fprintf fmt "@[<v 2>frame %d: R=%a D=%a slack=%a@," fr.frame
    Timeunit.pp fr.total Timeunit.pp fr.deadline Timeunit.pp (slack fr);
  List.iter (fun sr -> Format.fprintf fmt "%a@," pp_stage_response sr)
    fr.stages;
  Format.fprintf fmt "@]"

let pp_failure fmt f =
  Format.fprintf fmt "flow %d frame %d%a: %s" f.flow_id f.frame
    (fun fmt -> function
      | None -> ()
      | Some s -> Format.fprintf fmt " at %a" Stage.pp s)
    f.failed_stage f.reason
