(** Identity of one resource along a flow's pipeline (paper Section 3,
    Figure 6).

    A hop through a switch contributes up to three stages; a frame's
    end-to-end response time is the sum over the stages of its route:

    - [First_link (s, d)]: the source node's output queue plus the first
      link, analyzed under any work-conserving discipline (Section 3.2);
    - [Ingress n]: NIC FIFO to priority queue inside switch [n]
      (Section 3.3);
    - [Egress (n, d)]: priority queue of switch [n] towards [d], including
      the transmission on link [(n, d)] (Section 3.4). *)

type t = Gmf_precheck.Stage_key.t =
  | First_link of Network.Node.id * Network.Node.id
  | Ingress of Network.Node.id
  | Egress of Network.Node.id * Network.Node.id

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val stages_of_route : Network.Route.t -> t list
(** The stage sequence of a route, in traversal order: first link, then for
    every intermediate switch an ingress stage and an egress stage. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["first(0->4)"], ["in(4)"], ["out(4->6)"]. *)
