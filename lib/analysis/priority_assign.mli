(** 802.1p priority-assignment policies.

    The paper assumes every flow arrives with its priority chosen; in
    practice the operator must map flows onto the 2–8 classes their
    switches support (Section 1).  This module implements the standard
    policies and an exhaustive optimal search for small flow sets, so the
    policies can be compared (experiment E14).

    All policies only rewrite the [priority] field; routes, specs and ids
    are preserved.  Remarks are cleared (a policy assigns one class per
    flow). *)

type policy =
  | Deadline_monotonic
      (** Smaller minimum deadline -> higher class (the classical DM rule,
          optimal for preemptive single resources and a strong heuristic
          here). *)
  | Rate_monotonic
      (** Smaller minimum period -> higher class. *)
  | Lightest_first
      (** Lower bandwidth (CSUM/TSUM on the first link) -> higher class:
          protects thin interactive flows from bulk ones. *)
  | Uniform of int  (** Everyone in one class (no differentiation). *)

val assign :
  ?levels:int -> policy -> Traffic.Flow.t list -> Traffic.Flow.t list
(** [assign ~levels policy flows] maps flows onto [levels] classes (2..8,
    default 8) spread over the 802.1p range, ties broken by flow id.
    Raises [Invalid_argument] if [levels] is outside 1..8. *)

val best_exhaustive :
  ?exec:Gmf_exec.t ->
  ?config:Config.t ->
  ?levels:int ->
  topo:Network.Topology.t ->
  switches:(Network.Node.id * Click.Switch_model.t) list ->
  Traffic.Flow.t list ->
  (Traffic.Flow.t list * Gmf_util.Timeunit.ns) option
(** Exhaustively searches class assignments (at most [levels]^n — use for
    n <= 6 flows) for one that is schedulable, minimizing the largest
    worst-frame bound; [None] when no assignment is schedulable.  The
    returned flows carry the winning priorities.

    Assignments are independent cases evaluated through [exec] (default
    {!Gmf_exec.seq}); ties on the minimal bound resolve to the earliest
    assignment in enumeration order, so the winner is identical for
    every backend.  A case the executor fails to evaluate (timeout,
    crash) is skipped, exactly as an unschedulable assignment is. *)
