(** Case-evaluation layer shared by every "analyze many whole cases"
    driver (survivability enumeration, sensitivity probes, priority
    search, rerouting candidates, bench sweeps).

    A driver hands the layer a list of independent cases and a pure
    evaluation function; the layer decides {e how} the cases run — the
    {!Seq} backend evaluates them in order in-process, the {!Pool}
    backend fans them out over a Unix-fork worker pool — and returns
    results {e in case order regardless of backend}, so goldens and
    downstream folds never depend on scheduling.

    Contract for [f]: it must be a pure function of its case (no
    reliance on mutable state it shares with other cases), and under
    {!Pool} its result is shipped back through [Marshal], so it must
    not contain custom blocks that cannot be marshalled.

    Failures are per-case, never whole-run: an exception in [f], a
    worker crash, or a per-case timeout surfaces as an [Error] for that
    case while every other case still completes.

    Telemetry: [exec.cases] counts evaluations actually performed,
    [exec.memo_hits] counts evaluations avoided by the memo table,
    [exec.workers] counts worker processes forked; every completed
    evaluation records an [exec.case] span carrying its measured
    duration.  Recordings made {e inside} [f] (counters, histograms,
    spans against the default registry/tracer) are preserved under both
    backends: a {!Pool} worker resets its inherited default registry and
    tracer at case start, dumps them with the case result, and the
    parent replays the dump ({!Gmf_obs.Metrics.absorb}) and re-emits the
    spans — so pooled totals, histogram percentiles included, equal a
    sequential run's (modulo [exec.workers], which only a pool bumps). *)

type backend =
  | Seq  (** In-process, in-order.  Always available. *)
  | Pool of { jobs : int }
      (** Unix-fork worker pool with [jobs] workers.  Falls back to
          {!Seq} when [jobs <= 1] or fewer than two cases need
          evaluating. *)

type t = { backend : backend; timeout_s : float option }
(** An executor: a backend plus an optional per-case wall-clock timeout
    in seconds.  The timeout is delivered via [SIGALRM], so a case that
    never allocates may outlive it; analysis cases allocate heavily. *)

val seq : t
(** The default executor: {!Seq}, no timeout. *)

val pool : ?timeout_s:float -> int -> t
(** [pool jobs] is a {!Pool} executor. *)

val of_jobs : ?timeout_s:float -> int -> t
(** [of_jobs jobs] is {!seq} when [jobs <= 1], [pool jobs] otherwise —
    the normal way to turn a [--jobs N] flag into an executor. *)

val jobs_from_env : unit -> int option
(** The [GMFNET_JOBS] environment variable, when set to a positive
    integer. *)

val resolve_jobs : int option -> int
(** [resolve_jobs cli] picks the job count: the CLI value when given,
    else [GMFNET_JOBS], else [1]. *)

type error =
  | Timed_out  (** The per-case timeout fired. *)
  | Crashed of string  (** The worker evaluating the case died. *)
  | Exn of string  (** [f] raised; the payload is [Printexc.to_string]. *)

val error_to_string : error -> string

type 'b outcome = ('b, error) result

(** Memo table keyed by a caller-supplied digest string.  Lookups and
    inserts happen in the parent process, so hits are shared across
    drivers within a process; results computed inside pool workers are
    added when they are collected, but duplicate keys dispatched within
    one pool batch may each be evaluated once. *)
module Memo : sig
  type 'b t

  val create : unit -> 'b t
  val find : 'b t -> string -> 'b option
  val add : 'b t -> string -> 'b -> unit

  val hits : 'b t -> int
  (** Lookups that found a value, since creation (or {!clear}). *)

  val size : 'b t -> int
  val clear : 'b t -> unit
end

val map_cases :
  ?exec:t ->
  ?memo:'b Memo.t ->
  ?key:('a -> string) ->
  f:('a -> 'b) ->
  'a list ->
  'b outcome list
(** [map_cases ~f cases] evaluates every case and returns the outcomes
    in case order.  When both [memo] and [key] are given, a case whose
    key is already in the table returns the memoized value without
    evaluating, and successful evaluations are added to the table. *)

type 'b search = {
  found : (int * 'b) option;
      (** Index and value of the accepted case with the {e smallest
          index}, exactly as sequential first-match search would return
          it. *)
  last : 'b outcome option;
      (** Outcome of the last case sequential search would have
          evaluated: the accepted one, or the final case when none is
          accepted.  [None] only for an empty case list. *)
  evaluated : int;
      (** Cases sequential search would have evaluated ([found]'s index
          + 1, or the full length).  Under {!Pool} a few later cases may
          speculatively run; they are not counted here. *)
}

val search_first :
  ?exec:t ->
  ?memo:'b Memo.t ->
  ?key:('a -> string) ->
  f:('a -> 'b) ->
  accept:('b -> bool) ->
  'a list ->
  'b search
(** [search_first ~f ~accept cases] finds the first case (smallest
    index) whose successful outcome satisfies [accept].  Error outcomes
    are never accepted.  The result is deterministic and backend
    independent. *)
