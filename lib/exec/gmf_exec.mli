(** Case-evaluation layer shared by every "analyze many whole cases"
    driver (survivability enumeration, sensitivity probes, priority
    search, rerouting candidates, bench sweeps).

    A driver hands the layer a list of independent cases and a pure
    evaluation function; the layer decides {e how} the cases run — the
    {!Seq} backend evaluates them in order in-process, the {!Pool}
    backend fans them out over a Unix-fork worker pool — and returns
    results {e in case order regardless of backend}, so goldens and
    downstream folds never depend on scheduling.

    Contract for [f]: it must be a pure function of its case (no
    reliance on mutable state it shares with other cases), and under
    {!Pool} its result is shipped back through [Marshal], so it must
    not contain custom blocks that cannot be marshalled.

    Failures are per-case, never whole-run: an exception in [f], a
    worker crash, or a per-case timeout surfaces as an [Error] for that
    case while every other case still completes.

    Telemetry: [exec.cases] counts evaluations actually performed,
    [exec.memo_hits] counts evaluations avoided by the memo table,
    [exec.workers] counts worker processes forked, [exec.respawns]
    counts workers forked to {e replace} a crashed one (pool refills
    past the initial [jobs], and every {!Persistent.respawn}), and
    [exec.pool_exhausted] counts pool runs that ran out of respawn
    budget and had to fail their remaining cases with
    [Crashed "worker pool exhausted"]; every completed evaluation
    records an [exec.case] span carrying its measured duration.  Recordings made {e inside} [f] (counters, histograms,
    spans against the default registry/tracer) are preserved under both
    backends: a {!Pool} worker resets its inherited default registry and
    tracer at case start, dumps them with the case result, and the
    parent replays the dump ({!Gmf_obs.Metrics.absorb}) and re-emits the
    spans — so pooled totals, histogram percentiles included, equal a
    sequential run's (modulo [exec.workers], which only a pool bumps). *)

type backend =
  | Seq  (** In-process, in-order.  Always available. *)
  | Pool of { jobs : int }
      (** Unix-fork worker pool with [jobs] workers.  Falls back to
          {!Seq} when [jobs <= 1] or fewer than two cases need
          evaluating. *)

type t = { backend : backend; timeout_s : float option }
(** An executor: a backend plus an optional per-case wall-clock timeout
    in seconds.  The timeout is delivered via [SIGALRM], so a case that
    never allocates may outlive it; analysis cases allocate heavily.

    Timeouts {e nest}: entering a timeout scope saves the previous
    [SIGALRM] handler and any pending alarm, and leaving it restores the
    handler and re-arms the outer alarm minus the time the inner scope
    consumed (an outer alarm that expired meanwhile is re-armed with a
    minimal delay and fires immediately after).  A daemon-level
    per-request deadline therefore composes with the per-case timeout
    instead of being clobbered by it. *)

val seq : t
(** The default executor: {!Seq}, no timeout. *)

val pool : ?timeout_s:float -> int -> t
(** [pool jobs] is a {!Pool} executor. *)

val of_jobs : ?timeout_s:float -> int -> t
(** [of_jobs jobs] is {!seq} when [jobs <= 1], [pool jobs] otherwise —
    the normal way to turn a [--jobs N] flag into an executor. *)

val jobs_from_env : unit -> int option
(** The [GMFNET_JOBS] environment variable, when set to a positive
    integer. *)

val resolve_jobs : int option -> int
(** [resolve_jobs cli] picks the job count: the CLI value when given,
    else [GMFNET_JOBS], else [1]. *)

type error =
  | Timed_out  (** The per-case timeout fired. *)
  | Crashed of string  (** The worker evaluating the case died. *)
  | Exn of string  (** [f] raised; the payload is [Printexc.to_string]. *)

val error_to_string : error -> string

type 'b outcome = ('b, error) result

(** Memo table keyed by a caller-supplied digest string.  Lookups and
    inserts happen in the parent process, so hits are shared across
    drivers within a process; results computed inside pool workers are
    added when they are collected, but duplicate keys dispatched within
    one pool batch may each be evaluated once. *)
module Memo : sig
  type 'b t

  val create : unit -> 'b t
  val find : 'b t -> string -> 'b option
  val add : 'b t -> string -> 'b -> unit

  val hits : 'b t -> int
  (** Lookups that found a value, since creation (or {!clear}). *)

  val size : 'b t -> int
  val clear : 'b t -> unit
end

val map_cases :
  ?exec:t ->
  ?memo:'b Memo.t ->
  ?key:('a -> string) ->
  f:('a -> 'b) ->
  'a list ->
  'b outcome list
(** [map_cases ~f cases] evaluates every case and returns the outcomes
    in case order.  When both [memo] and [key] are given, a case whose
    key is already in the table returns the memoized value without
    evaluating, and successful evaluations are added to the table. *)

type 'b search = {
  found : (int * 'b) option;
      (** Index and value of the accepted case with the {e smallest
          index}, exactly as sequential first-match search would return
          it. *)
  last : 'b outcome option;
      (** Outcome of the last case sequential search would have
          evaluated: the accepted one, or the final case when none is
          accepted.  [None] only for an empty case list. *)
  evaluated : int;
      (** Cases sequential search would have evaluated ([found]'s index
          + 1, or the full length).  Under {!Pool} a few later cases may
          speculatively run; they are not counted here. *)
}

val search_first :
  ?exec:t ->
  ?memo:'b Memo.t ->
  ?key:('a -> string) ->
  f:('a -> 'b) ->
  accept:('b -> bool) ->
  'a list ->
  'b search
(** [search_first ~f ~accept cases] finds the first case (smallest
    index) whose successful outcome satisfies [accept].  Error outcomes
    are never accepted.  The result is deterministic and backend
    independent.

    Under {!Pool} the speculation past the frontier (first unresolved
    index) is throttled by an adaptive window: it starts [jobs] cases
    wide and doubles on every rejection (capped at the case count), so a
    search that accepts early wastes little speculative work while a
    rejection-dominated search — the admission-gate regime — opens up to
    full parallelism.  The window only affects scheduling, never the
    result. *)

(** Persistent supervised workers.

    The fork pool above is per call-site: workers are forked for one
    batch of cases (inheriting them by memory) and die with it.  A
    {!Persistent} worker is the long-lived complement: it forks {e once}
    around an [init] payload — e.g. a parsed topology and an admission
    session — and then serves marshalled request/response pairs until it
    is stopped, killed, or crashes.  [gmfnetd] keeps one per session, so
    the topology ships to the worker exactly once and warm fixpoint
    state survives across events.

    Protocol invariant: at most one message ([call], or [send] without
    its matching [recv], or [ping]) may be outstanding at a time.  The
    parent owns supervision — {!call} kills the worker on a missed
    deadline, a crash surfaces as [Error (Crashed _)], and {!respawn}
    (counted in [exec.respawns]) replaces the process while {!Backoff}
    paces the retries. *)
module Persistent : sig
  type ('req, 'resp) t

  val spawn :
    ?on_child:(unit -> unit) ->
    init:(unit -> 'st) ->
    handle:('st -> 'req -> 'resp) ->
    unit ->
    ('req, 'resp) t
  (** Fork a worker.  In the child, [on_child] runs first (close
      inherited fds there), then [init ()] builds the worker state, then
      the serve loop answers requests with [handle st req].  An
      exception from [handle] is returned to the parent as
      [Error (Exn _)] and the worker stays up; an exception from [init]
      ends the child, which the parent sees as [Crashed] on first use.
      Both closures are inherited by fork, not marshalled. *)

  val alive : ('req, 'resp) t -> bool
  (** Whether a worker process is currently attached.  [alive] does not
      probe the process ({!ping} does): a worker that died but has not
      been used since still reports [true] until a call notices. *)

  val pid : ('req, 'resp) t -> int option
  val fd : ('req, 'resp) t -> Unix.file_descr option
  (** Read side of the response pipe, for a caller-owned [select] loop:
      readable exactly when {!recv} will not block (response ready or
      worker dead). *)

  val send : ('req, 'resp) t -> 'req -> (unit, error) result
  (** Hand the worker a request without waiting for the response —
      the async half of {!call} for select-loop callers. *)

  val recv : ('req, 'resp) t -> 'resp outcome
  (** Collect the response to the outstanding {!send}.  Blocks unless
      {!fd} was reported readable.  EOF (the worker died mid-request)
      reaps the child and returns [Error (Crashed _)]. *)

  val call : ?deadline_s:float -> ('req, 'resp) t -> 'req -> 'resp outcome
  (** [send] then [recv], waiting at most [deadline_s] (forever when
      omitted).  On deadline expiry the worker is killed — its state is
      unrecoverable mid-request — and the call returns
      [Error Timed_out]. *)

  val ping : ?deadline_s:float -> ('req, 'resp) t -> bool
  (** Health check: round-trip a no-op message, waiting at most
      [deadline_s] (default 1s).  [false] kills and reaps an
      unresponsive worker.  Only meaningful when no request is
      outstanding. *)

  val stop : ('req, 'resp) t -> unit
  (** Graceful shutdown: ask the serve loop to exit, close the pipes and
      reap.  Idempotent. *)

  val kill : ('req, 'resp) t -> unit
  (** [SIGKILL] the worker and reap it.  Idempotent. *)

  val respawn : ('req, 'resp) t -> unit
  (** Replace the worker process with a fresh fork of the same
      [on_child]/[init]/[handle] (killing the old one if still
      attached).  Bumps [exec.respawns].  The new worker re-runs [init]
      from scratch — replaying any event journal is the caller's job. *)

  val respawn_count : ('req, 'resp) t -> int

  (** Exponential-backoff pacing for respawns, on caller-supplied
      clocks (tests drive it deterministically). *)
  module Backoff : sig
    type b

    val create : ?base_s:float -> ?max_s:float -> unit -> b
    (** Delay after the [n]-th consecutive failure is
        [base_s * 2^(n-1)] capped at [max_s] (defaults 0.1s / 30s).
        Raises [Invalid_argument] unless [0 < base_s <= max_s]. *)

    val note_failure : b -> now:float -> unit
    val note_success : b -> unit
    val ready : b -> now:float -> bool
    val next_try : b -> float
    (** Absolute time of the next allowed attempt (0. when unconstrained). *)

    val failures : b -> int
  end
end
