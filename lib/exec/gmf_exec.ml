type backend = Seq | Pool of { jobs : int }
type t = { backend : backend; timeout_s : float option }

let seq = { backend = Seq; timeout_s = None }
let pool ?timeout_s jobs = { backend = Pool { jobs }; timeout_s }

let of_jobs ?timeout_s jobs =
  if jobs <= 1 then { backend = Seq; timeout_s } else pool ?timeout_s jobs

let jobs_from_env () =
  match Sys.getenv_opt "GMFNET_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> Some n
    | _ -> None)

let resolve_jobs cli =
  match cli with
  | Some n -> n
  | None -> ( match jobs_from_env () with Some n -> n | None -> 1)

type error = Timed_out | Crashed of string | Exn of string

let error_to_string = function
  | Timed_out -> "timeout"
  | Crashed msg -> Printf.sprintf "crash: %s" msg
  | Exn msg -> Printf.sprintf "exception: %s" msg

type 'b outcome = ('b, error) result

module Memo = struct
  type 'b t = { tbl : (string, 'b) Hashtbl.t; mutable hits : int }

  let create () = { tbl = Hashtbl.create 64; hits = 0 }

  let find t key =
    match Hashtbl.find_opt t.tbl key with
    | Some v ->
        t.hits <- t.hits + 1;
        Some v
    | None -> None

  let add t key v = Hashtbl.replace t.tbl key v
  let hits t = t.hits
  let size t = Hashtbl.length t.tbl

  let clear t =
    Hashtbl.reset t.tbl;
    t.hits <- 0
end

let m_cases = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "exec.cases"

let m_memo_hits =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "exec.memo_hits"

let m_workers = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "exec.workers"

let m_respawns =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "exec.respawns"

let m_pool_exhausted =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "exec.pool_exhausted"

(* Worker-side observability recordings, marshalled back with each case
   result.  The metrics dump replays samples into the parent registry
   ({!Gmf_obs.Metrics.absorb}), so pooled totals — bucket counts and
   percentiles included — match a sequential run exactly; worker spans are
   re-emitted into the parent tracer in their case-local time domain. *)
type telemetry = {
  tm_metrics : Gmf_obs.Metrics.dump;
  tm_spans : Gmf_obs.Tracer.span list;
}

let absorb_telemetry tm =
  Gmf_obs.Metrics.absorb Gmf_obs.Metrics.default tm.tm_metrics;
  List.iter
    (fun (s : Gmf_obs.Tracer.span) ->
      Gmf_obs.Tracer.emit ~cat:s.Gmf_obs.Tracer.cat ~tid:s.Gmf_obs.Tracer.tid
        Gmf_obs.Tracer.default ~name:s.Gmf_obs.Tracer.name
        ~begin_ns:s.Gmf_obs.Tracer.begin_ns
        ~end_ns:(s.Gmf_obs.Tracer.begin_ns + s.Gmf_obs.Tracer.dur_ns))
    tm.tm_spans

(* Parent-side span for one completed case.  Durations are measured
   where the case ran (possibly a worker process) and recorded here in
   a caller-owned time domain (lane 1, origin 0), so aggregates stay
   correct under both backends. *)
let emit_case_span dur_s =
  let dur_ns = int_of_float (dur_s *. 1e9) in
  let dur_ns = if dur_ns < 0 then 0 else dur_ns in
  Gmf_obs.Tracer.emit ~cat:"exec" ~tid:1 Gmf_obs.Tracer.default
    ~name:"exec.case" ~begin_ns:0 ~end_ns:dur_ns

(* ------------------------------------------------------------------ *)
(* Per-case evaluation with timeout                                    *)
(* ------------------------------------------------------------------ *)

exception Case_timed_out

(* SIGALRM-based: works identically in-process (Seq) and inside pool
   workers.  OCaml delivers signals at allocation points, so a case
   that never allocates can overrun; analysis cases allocate heavily.

   Timeouts nest: both the previous handler and the previously pending
   alarm are saved on entry and re-armed on exit (minus the time this
   scope consumed), so an outer deadline — e.g. a daemon-level
   per-request deadline wrapping a per-case timeout — keeps ticking
   instead of being clobbered.  An outer alarm that expired while the
   inner scope ran is re-armed with a minimal positive delay and fires
   at the next allocation point after the restore. *)
let with_timeout timeout_s f =
  match timeout_s with
  | None -> f ()
  | Some s when s <= 0. -> f ()
  | Some s ->
      let old_handler =
        Sys.signal Sys.sigalrm
          (Sys.Signal_handle (fun _ -> raise Case_timed_out))
      in
      let t0 = Unix.gettimeofday () in
      let old_timer =
        Unix.setitimer Unix.ITIMER_REAL
          { Unix.it_interval = 0.; it_value = s }
      in
      let finally () =
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_interval = 0.; it_value = 0. });
        Sys.set_signal Sys.sigalrm old_handler;
        if old_timer.Unix.it_value > 0. then begin
          let elapsed = Unix.gettimeofday () -. t0 in
          let remaining = old_timer.Unix.it_value -. elapsed in
          let remaining = if remaining > 0. then remaining else 1e-6 in
          ignore
            (Unix.setitimer Unix.ITIMER_REAL
               { old_timer with Unix.it_value = remaining })
        end
      in
      Fun.protect ~finally f

(* Outcome plus wall-clock duration in seconds. *)
let eval_one ~timeout_s ~f x =
  let t0 = Unix.gettimeofday () in
  let outcome =
    match with_timeout timeout_s (fun () -> f x) with
    | v -> Ok v
    | exception Case_timed_out -> Error Timed_out
    | exception e -> Error (Exn (Printexc.to_string e))
  in
  (outcome, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Fork pool                                                           *)
(* ------------------------------------------------------------------ *)

type worker = {
  pid : int;
  to_child : out_channel;
  from_child : in_channel;
  fd : Unix.file_descr;  (* read side, for select *)
  mutable current : int option;
  mutable dead : bool;
}

let reap_message pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | _, Unix.WSIGNALED s -> Printf.sprintf "worker killed by signal %d" s
  | _, Unix.WSTOPPED s -> Printf.sprintf "worker stopped by signal %d" s
  | exception Unix.Unix_error _ -> "worker vanished"

let close_worker w =
  if not w.dead then begin
    w.dead <- true;
    (try close_out w.to_child with _ -> ());
    (try close_in w.from_child with _ -> ());
    try ignore (Unix.waitpid [] w.pid) with _ -> ()
  end

(* Fork one worker.  The child inherits [cases] and [f] by memory,
   reads decimal task indices (one per line), evaluates, and marshals
   [(idx, duration, outcome)] back — one message per task, so the
   parent's channel buffer never holds more than one response and
   select-readability stays truthful. *)
let spawn ~timeout_s ~f (cases : 'a array) =
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try
         Unix.close task_w;
         Unix.close res_r;
         let ic = Unix.in_channel_of_descr task_r in
         let oc = Unix.out_channel_of_descr res_w in
         let rec serve () =
           match input_line ic with
           | exception End_of_file -> ()
           | "q" -> ()
           | line ->
               let idx = int_of_string line in
               let reg = Gmf_obs.Metrics.default in
               let tracer = Gmf_obs.Tracer.default in
               let obs_on =
                 Gmf_obs.Metrics.enabled reg || Gmf_obs.Tracer.enabled tracer
               in
               (* The fork copied the parent's accumulated recordings;
                  zero them at case start so the dump sent back carries
                  exactly this case's activity, once. *)
               if obs_on then begin
                 Gmf_obs.Metrics.reset reg;
                 Gmf_obs.Tracer.reset tracer
               end;
               let outcome, dur = eval_one ~timeout_s ~f cases.(idx) in
               let telemetry =
                 if obs_on then
                   Some
                     {
                       tm_metrics = Gmf_obs.Metrics.dump reg;
                       tm_spans = Gmf_obs.Tracer.spans tracer;
                     }
                 else None
               in
               Marshal.to_channel oc
                 ((idx, dur, outcome, telemetry)
                   : int * float * _ outcome * telemetry option)
                 [ Marshal.Closures ];
               flush oc;
               serve ()
         in
         serve ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close task_r;
      Unix.close res_w;
      Gmf_obs.Metrics.incr m_workers;
      {
        pid;
        to_child = Unix.out_channel_of_descr task_w;
        from_child = Unix.in_channel_of_descr res_r;
        fd = res_r;
        current = None;
        dead = false;
      }

(* Drive a fork pool over the wanted indices of [cases].

   [want idx] says whether [idx] still needs a result (search mode
   retires indices past the best accepted one); [record idx outcome dur]
   stores a collected result.  Results are recorded exactly once per
   wanted index; a worker crash records [Crashed] for the task it was
   running and the worker is replaced while work remains.  Ordering of
   [record] calls is scheduling-dependent — determinism is the caller's
   job (it stores by index).

   [defer idx] (default never) holds a wanted index back while other
   tasks are in flight — the speculation throttle of [search_first]'s
   adaptive window.  Deferral is advisory only: a deferred index is
   re-offered on every fill round (the cursor never moves past it), and
   it is dispatched regardless when nothing is in flight, so [defer] can
   delay work but never deadlock or starve it. *)
let pool_run ~jobs ~timeout_s ?(defer = fun _ -> false) ~f ~want ~record
    (cases : 'a array) =
  let n = Array.length cases in
  let next = ref 0 in
  let next_wanted () =
    while !next < n && not (want !next) do incr next done;
    if !next < n then Some !next else None
  in
  let respawn_budget = ref n in
  let workers = ref [] in
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> None
  in
  let finally () =
    List.iter close_worker !workers;
    match old_sigpipe with
    | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
    | None -> ()
  in
  Fun.protect ~finally (fun () ->
      let alive () = List.filter (fun w -> not w.dead) !workers in
      let dispatch w idx =
        match
          output_string w.to_child (string_of_int idx ^ "\n");
          flush w.to_child
        with
        | () ->
            w.current <- Some idx;
            Gmf_obs.Metrics.incr m_cases;
            incr next
        | exception _ ->
            (* Child died before taking a task (its real failure, if
               any, was already collected); drop it — the next fill
               round retries [idx] on another worker. *)
            close_worker w
      in
      (* The first [jobs] spawns build the pool; every later one replaces
         a crashed worker and counts as a respawn. *)
      let initial_spawns = ref jobs in
      let exhausted_noted = ref false in
      let spawn_one () =
        if !respawn_budget > 0 then begin
          decr respawn_budget;
          if !initial_spawns > 0 then decr initial_spawns
          else Gmf_obs.Metrics.incr m_respawns;
          workers := spawn ~timeout_s ~f cases :: !workers
        end
      in
      let collect w =
        match
          (Marshal.from_channel w.from_child
            : int * float * _ outcome * telemetry option)
        with
        | idx, dur, outcome, telemetry ->
            (match telemetry with
            | Some tm -> absorb_telemetry tm
            | None -> ());
            w.current <- None;
            if want idx then record idx outcome dur
        | exception _ ->
            (* EOF or truncated message: the worker died mid-task. *)
            let msg = reap_message w.pid in
            w.dead <- true;
            (try close_out w.to_child with _ -> ());
            (try close_in w.from_child with _ -> ());
            (match w.current with
            | Some idx ->
                w.current <- None;
                if want idx then record idx (Error (Crashed msg)) 0.
            | None -> ())
      in
      let rec drive () =
        (* Top up the pool and hand tasks to idle workers. *)
        let rec fill () =
          match next_wanted () with
          | None -> ()
          | Some idx -> (
              let in_flight =
                List.exists (fun w -> w.current <> None) (alive ())
              in
              if defer idx && in_flight then
                (* Held back; the next collect re-runs fill and
                   re-offers [idx] (the cursor has not moved). *)
                ()
              else
                let idle =
                  List.find_opt (fun w -> w.current = None) (alive ())
                in
                match idle with
                | Some w ->
                    dispatch w idx;
                    fill ()
                | None ->
                    if List.length (alive ()) < jobs && !respawn_budget > 0
                    then begin
                      spawn_one ();
                      fill ()
                    end)
        in
        fill ();
        let busy = List.filter (fun w -> w.current <> None) (alive ()) in
        if busy = [] then begin
          (* Nothing in flight.  If tasks remain but the respawn budget
             is gone, fail them rather than hang. *)
          match next_wanted () with
          | None -> ()
          | Some idx ->
              if alive () = [] && !respawn_budget <= 0 then begin
                if not !exhausted_noted then begin
                  exhausted_noted := true;
                  Gmf_obs.Metrics.incr m_pool_exhausted
                end;
                record idx (Error (Crashed "worker pool exhausted")) 0.;
                incr next;
                drive ()
              end
              else if alive () = [] then begin
                spawn_one ();
                drive ()
              end
              else drive ()
        end
        else begin
          let fds = List.map (fun w -> w.fd) busy in
          let ready, _, _ = Unix.select fds [] [] (-1.) in
          List.iter
            (fun fd ->
              match List.find_opt (fun w -> w.fd = fd) busy with
              | Some w -> collect w
              | None -> ())
            ready;
          drive ()
        end
      in
      drive ())

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

let memo_lookup memo key x =
  match (memo, key) with
  | Some m, Some k -> (
      match Memo.find m (k x) with
      | Some v ->
          Gmf_obs.Metrics.incr m_memo_hits;
          Some v
      | None -> None)
  | _ -> None

let memo_store memo key x = function
  | Ok v -> (
      match (memo, key) with
      | Some m, Some k -> Memo.add m (k x) v
      | _ -> ())
  | Error _ -> ()

let eval_seq ~timeout_s ~memo ~key ~f x =
  match memo_lookup memo key x with
  | Some v -> Ok v
  | None ->
      Gmf_obs.Metrics.incr m_cases;
      let outcome, dur = eval_one ~timeout_s ~f x in
      emit_case_span dur;
      memo_store memo key x outcome;
      outcome

(* How many cases would actually be evaluated (memo hits excluded)? *)
let count_pending ~memo ~key cases =
  match (memo, key) with
  | Some m, Some k ->
      List.fold_left
        (fun acc x ->
          match Hashtbl.find_opt m.Memo.tbl (k x) with
          | Some _ -> acc
          | None -> acc + 1)
        0 cases
  | _ -> List.length cases

let map_cases ?(exec = seq) ?memo ?key ~f cases =
  let use_pool jobs =
    jobs > 1 && Sys.unix && count_pending ~memo ~key cases > 1
  in
  match exec.backend with
  | Pool { jobs } when use_pool jobs ->
      let arr = Array.of_list cases in
      let n = Array.length arr in
      let results = Array.make n None in
      (* Resolve memo hits parent-side before forking. *)
      Array.iteri
        (fun i x ->
          match memo_lookup memo key x with
          | Some v -> results.(i) <- Some (Ok v)
          | None -> ())
        arr;
      let want i = results.(i) = None in
      let record i outcome dur =
        results.(i) <- Some outcome;
        emit_case_span dur;
        memo_store memo key arr.(i) outcome
      in
      pool_run ~jobs ~timeout_s:exec.timeout_s ~f ~want ~record arr;
      Array.to_list
        (Array.map
           (function
             | Some o -> o
             | None -> Error (Crashed "case never completed"))
           results)
  | Seq | Pool _ ->
      List.map (eval_seq ~timeout_s:exec.timeout_s ~memo ~key ~f) cases

(* ------------------------------------------------------------------ *)
(* Persistent supervised workers                                       *)
(* ------------------------------------------------------------------ *)

(* Unlike the fork pool above — which forks per call-site and inherits
   its cases by memory — a persistent worker is forked once around an
   [init] payload (e.g. a parsed topology) and then serves marshalled
   requests until it is stopped, killed, or crashes.  The daemon keeps
   one per admission session, so the topology ships exactly once and
   the session state survives across events without re-marshalling. *)
module Persistent = struct
  type 'req message = Request of 'req | Ping | Quit
  type 'resp reply = Reply of ('resp, string) result | Pong

  type proc = {
    pid : int;
    to_child : out_channel;
    from_child : in_channel;
    fd : Unix.file_descr;  (* read side, for select *)
  }

  type ('req, 'resp) t = {
    body : Unix.file_descr -> Unix.file_descr -> unit;
    on_child : unit -> unit;
    mutable proc : proc option;
    mutable respawns : int;
  }

  (* Child-side serve loop: one [init], then strict request/reply.  An
     exception from [handle] is caught and shipped back as an [Error]
     string (the worker stays up); an exception from [init] or a
     truncated stream ends the child, which the parent observes as EOF
     ([Crashed]). *)
  let serve ~init ~handle task_r res_w =
    let ic = Unix.in_channel_of_descr task_r in
    let oc = Unix.out_channel_of_descr res_w in
    let st = init () in
    let rec loop () =
      match (Marshal.from_channel ic : _ message) with
      | exception End_of_file -> ()
      | Quit -> ()
      | Ping ->
          Marshal.to_channel oc (Pong : _ reply) [ Marshal.Closures ];
          flush oc;
          loop ()
      | Request req ->
          let result =
            match handle st req with
            | v -> Ok v
            | exception e -> Error (Printexc.to_string e)
          in
          Marshal.to_channel oc (Reply result : _ reply) [ Marshal.Closures ];
          flush oc;
          loop ()
    in
    loop ()

  let spawn_proc ~on_child body =
    let task_r, task_w = Unix.pipe () in
    let res_r, res_w = Unix.pipe () in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try
           Unix.close task_w;
           Unix.close res_r;
           on_child ();
           body task_r res_w
         with _ -> ());
        Unix._exit 0
    | pid ->
        Unix.close task_r;
        Unix.close res_w;
        Gmf_obs.Metrics.incr m_workers;
        {
          pid;
          to_child = Unix.out_channel_of_descr task_w;
          from_child = Unix.in_channel_of_descr res_r;
          fd = res_r;
        }

  let spawn ?(on_child = fun () -> ()) ~init ~handle () =
    let body task_r res_w = serve ~init ~handle task_r res_w in
    { body; on_child; proc = Some (spawn_proc ~on_child body); respawns = 0 }

  let alive t = t.proc <> None
  let pid t = Option.map (fun p -> p.pid) t.proc
  let fd t = Option.map (fun p -> p.fd) t.proc
  let respawn_count t = t.respawns

  (* Reap a dead child: close both channels, collect its exit status
     message, drop the proc.  Safe to call once per death. *)
  let crashed t =
    match t.proc with
    | None -> "worker not running"
    | Some p ->
        t.proc <- None;
        (try close_out p.to_child with _ -> ());
        (try close_in p.from_child with _ -> ());
        reap_message p.pid

  let kill t =
    match t.proc with
    | None -> ()
    | Some p ->
        (try Unix.kill p.pid Sys.sigkill with _ -> ());
        ignore (crashed t)

  (* Writing to a dead child raises EPIPE only if SIGPIPE is not fatal;
     mask it for the duration of the write so the failure surfaces as a
     [Crashed] result instead of killing the calling process. *)
  let without_sigpipe f =
    if not Sys.unix then f ()
    else begin
      let old =
        try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> None
      in
      let finally () =
        match old with
        | Some h -> ( try Sys.set_signal Sys.sigpipe h with _ -> ())
        | None -> ()
      in
      Fun.protect ~finally f
    end

  let stop t =
    match t.proc with
    | None -> ()
    | Some p ->
        (try
           without_sigpipe (fun () ->
               Marshal.to_channel p.to_child (Quit : _ message)
                 [ Marshal.Closures ];
               flush p.to_child)
         with _ -> ());
        ignore (crashed t)

  let send t req =
    match t.proc with
    | None -> Error (Crashed "worker not running")
    | Some p -> (
        match
          without_sigpipe (fun () ->
              Marshal.to_channel p.to_child (Request req : _ message)
                [ Marshal.Closures ];
              flush p.to_child)
        with
        | () -> Ok ()
        | exception _ -> Error (Crashed (crashed t)))

  let rec recv t =
    match t.proc with
    | None -> Error (Crashed "worker not running")
    | Some p -> (
        match (Marshal.from_channel p.from_child : _ reply) with
        | Pong -> recv t
        | Reply (Ok v) -> Ok v
        | Reply (Error msg) -> Error (Exn msg)
        | exception _ -> Error (Crashed (crashed t)))

  let rec wait_readable fd until =
    let timeout =
      match until with
      | None -> -1.
      | Some u -> Float.max 0. (u -. Unix.gettimeofday ())
    in
    match Unix.select [ fd ] [] [] timeout with
    | ready, _, _ -> ready <> []
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd until

  let call ?deadline_s t req =
    match send t req with
    | Error _ as e -> e
    | Ok () -> (
        match t.proc with
        | None -> Error (Crashed "worker not running")
        | Some p ->
            let until =
              Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s
            in
            if wait_readable p.fd until then recv t
            else begin
              kill t;
              Error Timed_out
            end)

  let ping ?(deadline_s = 1.) t =
    match t.proc with
    | None -> false
    | Some p -> (
        match
          without_sigpipe (fun () ->
              Marshal.to_channel p.to_child (Ping : _ message)
                [ Marshal.Closures ];
              flush p.to_child)
        with
        | exception _ ->
            ignore (crashed t);
            false
        | () ->
            if
              not
                (wait_readable p.fd
                   (Some (Unix.gettimeofday () +. deadline_s)))
            then begin
              kill t;
              false
            end
            else (
              match (Marshal.from_channel p.from_child : _ reply) with
              | Pong | Reply _ -> true
              | exception _ ->
                  ignore (crashed t);
                  false))

  let respawn t =
    kill t;
    t.proc <- Some (spawn_proc ~on_child:t.on_child t.body);
    t.respawns <- t.respawns + 1;
    Gmf_obs.Metrics.incr m_respawns

  (* Exponential-backoff bookkeeping for a supervisor deciding when a
     crashed worker may be respawned.  Pure arithmetic on caller-supplied
     clocks, so tests can drive it deterministically. *)
  module Backoff = struct
    type b = {
      base_s : float;
      max_s : float;
      mutable failures : int;
      mutable not_before : float;
    }

    let create ?(base_s = 0.1) ?(max_s = 30.) () =
      if base_s <= 0. || max_s < base_s then
        invalid_arg "Gmf_exec.Persistent.Backoff.create";
      { base_s; max_s; failures = 0; not_before = 0. }

    let note_failure b ~now =
      b.failures <- b.failures + 1;
      let delay = b.base_s *. (2. ** float_of_int (min 16 (b.failures - 1))) in
      let delay = if delay > b.max_s then b.max_s else delay in
      b.not_before <- now +. delay

    let note_success b =
      b.failures <- 0;
      b.not_before <- 0.

    let ready b ~now = now >= b.not_before
    let next_try b = b.not_before
    let failures b = b.failures
  end
end

type 'b search = {
  found : (int * 'b) option;
  last : 'b outcome option;
  evaluated : int;
}

let search_first ?(exec = seq) ?memo ?key ~f ~accept cases =
  let n = List.length cases in
  let accepts = function Ok v -> accept v | Error _ -> false in
  let finish (results : 'b outcome option array) =
    let best = ref None in
    Array.iteri
      (fun i r ->
        match (r, !best) with
        | Some o, None when accepts o -> best := Some i
        | _ -> ())
      results;
    match !best with
    | Some i ->
        let v = match results.(i) with Some (Ok v) -> v | _ -> assert false in
        { found = Some (i, v); last = Some (Ok v); evaluated = i + 1 }
    | None ->
        let last = if n = 0 then None else results.(n - 1) in
        { found = None; last; evaluated = n }
  in
  let use_pool jobs =
    jobs > 1 && Sys.unix && count_pending ~memo ~key cases > 1
  in
  match exec.backend with
  | Pool { jobs } when use_pool jobs ->
      let arr = Array.of_list cases in
      let results = Array.make n None in
      let best = ref n in
      (* Memo hits resolve before forking and can retire the tail. *)
      Array.iteri
        (fun i x ->
          if i < !best then
            match memo_lookup memo key x with
            | Some v ->
                results.(i) <- Some (Ok v);
                if accept v && i < !best then best := i
            | None -> ())
        arr;
      let want i = i < !best && results.(i) = None in
      (* Adaptive speculative window.  Sequential-equivalent search only
         needs the frontier (first unresolved index); running the whole
         tail in parallel wastes workers when an early case accepts.
         Start [jobs] wide and double on every recorded rejection (capped
         at [n]): while rejections dominate — the admission-gate and
         sensitivity-search regime — the window opens up to full
         parallelism, and a fast-accepting prefix keeps speculation
         cheap. *)
      let window = ref (max jobs 1) in
      let frontier = ref 0 in
      let advance_frontier () =
        while !frontier < n && results.(!frontier) <> None do
          incr frontier
        done
      in
      advance_frontier ();
      let defer i = i >= !frontier + !window in
      let record i outcome dur =
        results.(i) <- Some outcome;
        emit_case_span dur;
        memo_store memo key arr.(i) outcome;
        if accepts outcome && i < !best then best := i
        else if not (accepts outcome) then window := min n (!window * 2);
        advance_frontier ()
      in
      if !best > 0 then
        pool_run ~jobs ~timeout_s:exec.timeout_s ~defer ~want ~record ~f arr;
      finish results
  | Seq | Pool _ ->
      let results = Array.make n None in
      (try
         List.iteri
           (fun i x ->
             let o = eval_seq ~timeout_s:exec.timeout_s ~memo ~key ~f x in
             results.(i) <- Some o;
             if accepts o then raise Stdlib.Exit)
           cases
       with Stdlib.Exit -> ());
      finish results
