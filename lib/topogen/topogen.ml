type result = {
  spec : Gen_spec.t;
  scenario : Traffic.Scenario.t;
  built : Builders.built;
  requested : int;
  placed : int;
  rejected : int;
  gen_seconds : float;
}

let m_nodes = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "topogen.nodes"
let m_links = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "topogen.links"
let m_flows = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "topogen.flows"

let m_rejected =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "topogen.rejected"

let g_gen_seconds =
  Gmf_obs.Metrics.gauge Gmf_obs.Metrics.default "topogen.gen_seconds"

(* Kind-specific traffic contracts, from the Gmf_workload catalog.  The
   sensor class varies period and payload per flow (drawn from the shared
   rng, so still deterministic). *)
let sensor_periods = [| 50; 100; 200 |] (* ms *)
let sensor_payloads = [| 100; 200; 400 |] (* bytes *)

let spec_of_kind rng = function
  | Gen_spec.Mpeg -> (Workload.Mpeg.spec (), Ethernet.Encap.Udp)
  | Gen_spec.Voip -> (Workload.Voip.g711_spec (), Ethernet.Encap.Rtp_udp)
  | Gen_spec.Sensor ->
      let period =
        Gmf_util.Timeunit.ms (Gmf_util.Rng.pick rng sensor_periods)
      in
      let payload_bytes = Gmf_util.Rng.pick rng sensor_payloads in
      ( Workload.Voip.spec ~period ~payload_bytes
          ~deadline:(Gmf_util.Timeunit.ms 250) (),
        Ethernet.Encap.Udp )

let priority_of_kind (spec : Gen_spec.t) = function
  | Gen_spec.Sensor -> spec.Gen_spec.prio_lo
  | Gen_spec.Mpeg -> (spec.Gen_spec.prio_lo + spec.Gen_spec.prio_hi) / 2
  | Gen_spec.Voip -> spec.Gen_spec.prio_hi

let pick_kind rng mix total_weight =
  let r = Gmf_util.Rng.int rng total_weight in
  let rec go acc = function
    | [] -> assert false
    | [ (k, _) ] -> k
    | (k, w) :: rest -> if r < acc + w then k else go (acc + w) rest
  in
  go 0 mix

let generate (spec : Gen_spec.t) =
  (match Gen_spec.validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Topogen.generate: " ^ e));
  let t0 = Unix.gettimeofday () in
  let built =
    Builders.build ~rate_bps:spec.Gen_spec.rate_bps ~prop:spec.Gen_spec.prop
      ~hosts_per_switch:spec.Gen_spec.hosts_per_switch spec.Gen_spec.family
  in
  let topo = built.Builders.topo in
  let hosts = built.Builders.hosts in
  let nhosts = Array.length hosts in
  if nhosts < 2 && spec.Gen_spec.flows > 0 then
    invalid_arg "Topogen.generate: need at least two hosts to place flows";
  let rng = Gmf_util.Rng.create ~seed:spec.Gen_spec.seed in
  let total_weight =
    List.fold_left (fun acc (_, w) -> acc + w) 0 spec.Gen_spec.mix
  in
  (* Locality: host indices per region, and a lazily built "near" pool per
     region (hosts of every region local to it). *)
  let region_hosts = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      let prev =
        match Hashtbl.find_opt region_hosts r with Some l -> l | None -> []
      in
      Hashtbl.replace region_hosts r (i :: prev))
    built.Builders.host_region;
  let regions =
    Hashtbl.fold (fun r _ acc -> r :: acc) region_hosts []
    |> List.sort compare
  in
  let near_pool = Hashtbl.create 64 in
  let near_hosts_of r =
    match Hashtbl.find_opt near_pool r with
    | Some a -> a
    | None ->
        let pool =
          List.concat_map
            (fun r' ->
              if Builders.near_regions spec.Gen_spec.family r r' then
                List.rev (Hashtbl.find region_hosts r')
              else [])
            regions
          |> Array.of_list
        in
        Hashtbl.replace near_pool r pool;
        pool
  in
  (* Shortest-path routes, memoized per endpoint pair: locality makes
     pair reuse common, so generation does not re-run BFS per flow. *)
  let route_memo = Hashtbl.create 256 in
  let route_of src dst =
    match Hashtbl.find_opt route_memo (src, dst) with
    | Some r -> r
    | None ->
        let r =
          match Network.Topology.shortest_path topo ~src ~dst with
          | None -> None
          | Some nodes -> Some (Network.Route.make topo nodes)
        in
        Hashtbl.replace route_memo (src, dst) r;
        r
  in
  (* The default switch model Scenario.make will assign per node — needed
     to price ingress rotations before the scenario exists. *)
  let model_memo = Hashtbl.create 64 in
  let model_of n =
    match Hashtbl.find_opt model_memo n with
    | Some m -> m
    | None ->
        let degree = Network.Topology.degree topo n in
        let m = Click.Switch_model.make ~ninterfaces:(max 1 degree) () in
        Hashtbl.replace model_memo n m;
        m
  in
  (* Running utilizations, mirroring Static_tests.link_utilization and
     ingress_utilization term by term so the emitted scenario can never
     trip GMF201/GMF203 (and with max_util <= 0.9, not even the GMF204
     saturation hint). *)
  let link_util = Hashtbl.create 256 in
  let ingress_util = Hashtbl.create 256 in
  let current tbl key =
    match Hashtbl.find_opt tbl key with Some u -> u | None -> 0.
  in
  let rejected = ref 0 in
  let placed = ref [] in
  let nplaced = ref 0 in
  let max_attempts = 20 in
  (* One candidate draw: endpoints, route, contract; accepted only if the
     uncontended floor meets every deadline (GMF202) and no link/ingress
     utilization would cross the ceiling. *)
  let attempt kind =
    let si = Gmf_util.Rng.int rng nhosts in
    let use_near = Gmf_util.Rng.float rng 1.0 < spec.Gen_spec.locality in
    let pool =
      if use_near then near_hosts_of built.Builders.host_region.(si)
      else [||]
    in
    let di =
      if use_near && Array.length pool > 0 then
        pool.(Gmf_util.Rng.int rng (Array.length pool))
      else Gmf_util.Rng.int rng nhosts
    in
    if di = si then None
    else
      let src = hosts.(si) and dst = hosts.(di) in
      match route_of src dst with
      | None -> None
      | Some route -> (
          let gspec, encap = spec_of_kind rng kind in
          let priority = priority_of_kind spec kind in
          let name =
            Printf.sprintf "%s%d" (Gen_spec.kind_to_string kind) !nplaced
          in
          match
            Traffic.Flow.make_checked ~id:!nplaced ~name ~spec:gspec ~encap
              ~route ~priority
          with
          | Error _ -> None
          | Ok flow ->
              let hops = Network.Route.hops route in
              let params =
                List.map
                  (fun (s, d) ->
                    ( (s, d),
                      Traffic.Link_params.make ~flow
                        ~link:(Network.Topology.link_exn topo ~src:s ~dst:d)
                    ))
                  hops
              in
              let switches = Network.Route.intermediate_switches route in
              let params_of s d = List.assoc (s, d) params in
              let tsum = float_of_int (Traffic.Flow.tsum flow) in
              let n = Traffic.Flow.n flow in
              let floor_ok =
                let ok = ref true in
                for k = 0 to n - 1 do
                  let fr = Gmf.Spec.frame gspec k in
                  let links =
                    List.fold_left
                      (fun acc (_, (p : Traffic.Link_params.t)) ->
                        acc
                        + p.Traffic.Link_params.c.(k)
                        + p.Traffic.Link_params.link.Network.Link.prop)
                      0 params
                  in
                  let ingresses =
                    List.fold_left
                      (fun acc node ->
                        let pred = Network.Route.prec route node in
                        let p = params_of pred node in
                        acc
                        + p.Traffic.Link_params.eth_frames.(k)
                          * (model_of node).Click.Switch_model.croute)
                      0 switches
                  in
                  if
                    fr.Gmf.Frame_spec.jitter + links + ingresses
                    > fr.Gmf.Frame_spec.deadline
                  then ok := false
                done;
                !ok
              in
              let link_fits =
                List.for_all
                  (fun (key, p) ->
                    current link_util key +. Traffic.Link_params.utilization p
                    <= spec.Gen_spec.max_util)
                  params
              in
              let ingress_contribs =
                List.map
                  (fun node ->
                    let pred = Network.Route.prec route node in
                    let p = params_of pred node in
                    let circ =
                      Click.Switch_model.circ (model_of node)
                    in
                    ( (pred, node),
                      float_of_int (Traffic.Link_params.nsum p * circ)
                      /. tsum ))
                  switches
              in
              let ingress_fits =
                List.for_all
                  (fun (key, contrib) ->
                    current ingress_util key +. contrib
                    <= spec.Gen_spec.max_util)
                  ingress_contribs
              in
              if not (floor_ok && link_fits && ingress_fits) then None
              else begin
                List.iter
                  (fun (key, p) ->
                    Hashtbl.replace link_util key
                      (current link_util key
                      +. Traffic.Link_params.utilization p))
                  params;
                List.iter
                  (fun (key, contrib) ->
                    Hashtbl.replace ingress_util key
                      (current ingress_util key +. contrib))
                  ingress_contribs;
                Some flow
              end)
  in
  for _slot = 1 to spec.Gen_spec.flows do
    let kind = pick_kind rng spec.Gen_spec.mix total_weight in
    let rec go attempts =
      if attempts >= max_attempts then ()
      else
        match attempt kind with
        | Some flow ->
            placed := flow :: !placed;
            incr nplaced
        | None ->
            incr rejected;
            go (attempts + 1)
    in
    go 0
  done;
  let scenario = Traffic.Scenario.make ~topo ~flows:(List.rev !placed) () in
  let gen_seconds = Unix.gettimeofday () -. t0 in
  if Gmf_obs.Metrics.enabled Gmf_obs.Metrics.default then begin
    Gmf_obs.Metrics.incr ~by:(Network.Topology.node_count topo) m_nodes;
    Gmf_obs.Metrics.incr ~by:built.Builders.link_count m_links;
    Gmf_obs.Metrics.incr ~by:!nplaced m_flows;
    Gmf_obs.Metrics.incr ~by:!rejected m_rejected;
    Gmf_obs.Metrics.set_gauge g_gen_seconds gen_seconds
  end;
  {
    spec;
    scenario;
    built;
    requested = spec.Gen_spec.flows;
    placed = !nplaced;
    rejected = !rejected;
    gen_seconds;
  }

let to_string = Scenario_io.Print.to_string
let to_file = Scenario_io.Print.to_file

let summary r =
  let topo = Traffic.Scenario.topo r.scenario in
  [
    ("family", Gen_spec.family_to_string r.spec.Gen_spec.family);
    ("nodes", string_of_int (Network.Topology.node_count topo));
    ("switches", string_of_int r.built.Builders.switch_count);
    ("links", string_of_int r.built.Builders.link_count);
    ("hosts", string_of_int (Array.length r.built.Builders.hosts));
    ("flows", Printf.sprintf "%d/%d" r.placed r.requested);
    ("rejected-draws", string_of_int r.rejected);
    ("gen-seconds", Printf.sprintf "%.3f" r.gen_seconds);
  ]
