type built = {
  topo : Network.Topology.t;
  hosts : Network.Node.id array;
  host_region : int array;
  switch_count : int;
  link_count : int;
}

let check_valid family =
  let probe = { Gen_spec.default with Gen_spec.family } in
  match Gen_spec.validate probe with
  | Ok () -> ()
  | Error e -> invalid_arg ("Builders.build: " ^ e)

let finish topo hosts regions switch_count =
  {
    topo;
    hosts = Array.of_list (List.rev hosts);
    host_region = Array.of_list (List.rev regions);
    switch_count;
    link_count = List.length (Network.Topology.links topo);
  }

(* Hosts are dual-homed onto every plane of a multi-plane mesh; the planes
   themselves stay disjoint, so redundancy comes from parallel fabrics
   rather than parallel edges (which Topology rejects). *)
let mesh ~rate_bps ~prop ~hosts_per_switch ~rows ~cols ~planes =
  let topo = Network.Topology.create () in
  let sw =
    Array.init planes (fun p ->
        Array.init rows (fun r ->
            Array.init cols (fun c ->
                Network.Topology.add_node topo
                  ~name:(Printf.sprintf "sw%d_%d_%d" p r c)
                  ~kind:Network.Node.Switch)))
  in
  let connect a b =
    Network.Topology.add_duplex_link topo ~a ~b ~rate_bps ~prop
  in
  for p = 0 to planes - 1 do
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        if c < cols - 1 then connect sw.(p).(r).(c) sw.(p).(r).(c + 1);
        if r < rows - 1 then connect sw.(p).(r).(c) sw.(p).(r + 1).(c)
      done
    done
  done;
  let hosts = ref [] and regions = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      for h = 0 to hosts_per_switch - 1 do
        let id =
          Network.Topology.add_node topo
            ~name:(Printf.sprintf "h%d_%d_%d" r c h)
            ~kind:Network.Node.Endhost
        in
        for p = 0 to planes - 1 do
          connect id sw.(p).(r).(c)
        done;
        hosts := id :: !hosts;
        regions := ((r * cols) + c) :: !regions
      done
    done
  done;
  finish topo !hosts !regions (planes * rows * cols)

let fat_tree ~rate_bps ~prop ~hosts_per_switch ~k =
  let topo = Network.Topology.create () in
  let half = k / 2 in
  let connect a b =
    Network.Topology.add_duplex_link topo ~a ~b ~rate_bps ~prop
  in
  let core =
    Array.init (half * half) (fun i ->
        Network.Topology.add_node topo
          ~name:(Printf.sprintf "core%d" i)
          ~kind:Network.Node.Switch)
  in
  let edge = Array.make_matrix k half 0 in
  let agg = Array.make_matrix k half 0 in
  for p = 0 to k - 1 do
    for i = 0 to half - 1 do
      edge.(p).(i) <-
        Network.Topology.add_node topo
          ~name:(Printf.sprintf "edge%d_%d" p i)
          ~kind:Network.Node.Switch;
      agg.(p).(i) <-
        Network.Topology.add_node topo
          ~name:(Printf.sprintf "agg%d_%d" p i)
          ~kind:Network.Node.Switch
    done;
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        connect edge.(p).(e) agg.(p).(a)
      done
    done;
    for a = 0 to half - 1 do
      for j = 0 to half - 1 do
        connect agg.(p).(a) core.((a * half) + j)
      done
    done
  done;
  let hosts = ref [] and regions = ref [] in
  for p = 0 to k - 1 do
    for e = 0 to half - 1 do
      for h = 0 to hosts_per_switch - 1 do
        let id =
          Network.Topology.add_node topo
            ~name:(Printf.sprintf "h%d_%d_%d" p e h)
            ~kind:Network.Node.Endhost
        in
        connect id edge.(p).(e);
        hosts := id :: !hosts;
        regions := p :: !regions
      done
    done
  done;
  finish topo !hosts !regions ((k * k) + (half * half))

let ring_of_rings ~rate_bps ~prop ~hosts_per_switch ~rings ~ring_size =
  let topo = Network.Topology.create () in
  let connect a b =
    Network.Topology.add_duplex_link topo ~a ~b ~rate_bps ~prop
  in
  let sw =
    Array.init rings (fun g ->
        Array.init ring_size (fun i ->
            Network.Topology.add_node topo
              ~name:(Printf.sprintf "ring%d_sw%d" g i)
              ~kind:Network.Node.Switch))
  in
  (* Local rings (a 2-switch ring is a single duplex link, not a double
     edge; a 1-switch ring has no local links). *)
  Array.iter
    (fun ring ->
      let n = Array.length ring in
      if n = 2 then connect ring.(0) ring.(1)
      else if n > 2 then
        for i = 0 to n - 1 do
          connect ring.(i) ring.((i + 1) mod n)
        done)
    sw;
  (* Global ring over the gateways (switch 0 of every local ring). *)
  if rings = 2 then connect sw.(0).(0) sw.(1).(0)
  else if rings > 2 then
    for g = 0 to rings - 1 do
      connect sw.(g).(0) sw.((g + 1) mod rings).(0)
    done;
  let hosts = ref [] and regions = ref [] in
  for g = 0 to rings - 1 do
    for i = 0 to ring_size - 1 do
      for h = 0 to hosts_per_switch - 1 do
        let id =
          Network.Topology.add_node topo
            ~name:(Printf.sprintf "h%d_%d_%d" g i h)
            ~kind:Network.Node.Endhost
        in
        connect id sw.(g).(i);
        hosts := id :: !hosts;
        regions := g :: !regions
      done
    done
  done;
  finish topo !hosts !regions (rings * ring_size)

let build ~rate_bps ~prop ~hosts_per_switch family =
  check_valid family;
  if hosts_per_switch < 1 then
    invalid_arg "Builders.build: hosts_per_switch must be >= 1";
  match family with
  | Gen_spec.Mesh { rows; cols; planes } ->
      mesh ~rate_bps ~prop ~hosts_per_switch ~rows ~cols ~planes
  | Gen_spec.Fat_tree { k } -> fat_tree ~rate_bps ~prop ~hosts_per_switch ~k
  | Gen_spec.Ring_of_rings { rings; ring_size } ->
      ring_of_rings ~rate_bps ~prop ~hosts_per_switch ~rings ~ring_size

let near_regions family a b =
  match family with
  | Gen_spec.Mesh { cols; _ } ->
      let ra = a / cols and ca = a mod cols in
      let rb = b / cols and cb = b mod cols in
      abs (ra - rb) + abs (ca - cb) <= 2
  | Gen_spec.Fat_tree _ | Gen_spec.Ring_of_rings _ -> a = b
