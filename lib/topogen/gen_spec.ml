type family =
  | Mesh of { rows : int; cols : int; planes : int }
  | Fat_tree of { k : int }
  | Ring_of_rings of { rings : int; ring_size : int }

type kind = Mpeg | Voip | Sensor
type mix = (kind * int) list

type t = {
  family : family;
  hosts_per_switch : int;
  rate_bps : int;
  prop : Gmf_util.Timeunit.ns;
  flows : int;
  mix : mix;
  locality : float;
  max_util : float;
  prio_lo : int;
  prio_hi : int;
  seed : int;
}

let default =
  {
    family = Mesh { rows = 4; cols = 4; planes = 1 };
    hosts_per_switch = 2;
    rate_bps = 100_000_000;
    prop = 0;
    flows = 40;
    mix = [ (Voip, 3); (Mpeg, 1); (Sensor, 2) ];
    locality = 0.8;
    max_util = 0.7;
    prio_lo = 1;
    prio_hi = 6;
    seed = 42;
  }

let switch_count = function
  | Mesh { rows; cols; planes } -> rows * cols * planes
  | Fat_tree { k } -> (k * k) + (k * k / 4)
  | Ring_of_rings { rings; ring_size } -> rings * ring_size

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match t.family with
  | Mesh { rows; cols; planes = _ } when rows < 1 || cols < 1 ->
      err "mesh needs rows >= 1 and cols >= 1 (got %dx%d)" rows cols
  | Mesh { planes; _ } when planes < 1 || planes > 2 ->
      err "mesh planes must be 1 or 2 (got %d)" planes
  | Fat_tree { k } when k < 2 || k mod 2 <> 0 ->
      err "fat-tree k must be even and >= 2 (got %d)" k
  | Ring_of_rings { rings; ring_size } when rings < 1 || ring_size < 1 ->
      err "rings needs rings >= 1 and ring_size >= 1 (got %dx%d)" rings
        ring_size
  | _ ->
      if t.hosts_per_switch < 1 then err "hosts_per_switch must be >= 1"
      else if t.rate_bps <= 0 then err "rate_bps must be positive"
      else if t.prop < 0 then err "prop must be >= 0"
      else if t.flows < 0 then err "flows must be >= 0"
      else if t.mix = [] then err "mix must not be empty"
      else if List.exists (fun (_, w) -> w <= 0) t.mix then
        err "mix weights must be positive"
      else if not (t.locality >= 0. && t.locality <= 1.) then
        err "locality must be in [0, 1] (got %g)" t.locality
      else if not (t.max_util > 0. && t.max_util <= 1.) then
        err "max_util must be in (0, 1] (got %g)" t.max_util
      else if t.prio_lo < 0 || t.prio_hi > 7 || t.prio_lo > t.prio_hi then
        err "priority band must satisfy 0 <= lo <= hi <= 7 (got %d..%d)"
          t.prio_lo t.prio_hi
      else Ok ()

let kind_to_string = function
  | Mpeg -> "mpeg"
  | Voip -> "voip"
  | Sensor -> "sensor"

let kind_of_string = function
  | "mpeg" -> Ok Mpeg
  | "voip" -> Ok Voip
  | "sensor" -> Ok Sensor
  | s -> Error (Printf.sprintf "unknown traffic kind %S (mpeg|voip|sensor)" s)

let mix_to_string mix =
  String.concat ","
    (List.map (fun (k, w) -> Printf.sprintf "%s=%d" (kind_to_string k) w) mix)

let mix_of_string s =
  let parse_entry e =
    match String.split_on_char '=' e with
    | [ k; w ] -> (
        match (kind_of_string k, int_of_string_opt w) with
        | Ok k, Some w when w > 0 -> Ok (k, w)
        | Ok _, _ ->
            Error (Printf.sprintf "mix weight %S must be a positive integer" w)
        | (Error _ as e), _ -> e)
    | _ ->
        Error (Printf.sprintf "mix entry %S is not of the form kind=weight" e)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match parse_entry e with
        | Ok kw -> go (kw :: acc) rest
        | Error _ as err -> err)
  in
  match String.split_on_char ',' (String.trim s) with
  | [ "" ] -> Error "empty mix"
  | entries -> go [] entries

let family_to_string = function
  | Mesh { rows; cols; planes = 1 } -> Printf.sprintf "mesh:%dx%d" rows cols
  | Mesh { rows; cols; planes } ->
      Printf.sprintf "mesh:%dx%dx%d" rows cols planes
  | Fat_tree { k } -> Printf.sprintf "fat-tree:%d" k
  | Ring_of_rings { rings; ring_size } ->
      Printf.sprintf "rings:%dx%d" rings ring_size

let family_of_string s =
  let dims part =
    List.map int_of_string_opt (String.split_on_char 'x' part)
  in
  match String.split_on_char ':' (String.trim s) with
  | [ "mesh"; part ] -> (
      match dims part with
      | [ Some rows; Some cols ] -> Ok (Mesh { rows; cols; planes = 1 })
      | [ Some rows; Some cols; Some planes ] ->
          Ok (Mesh { rows; cols; planes })
      | _ -> Error (Printf.sprintf "mesh dimensions %S: want RxC or RxCxP" part)
      )
  | [ "fat-tree"; part ] -> (
      match int_of_string_opt part with
      | Some k -> Ok (Fat_tree { k })
      | None -> Error (Printf.sprintf "fat-tree arity %S: want an integer" part)
      )
  | [ "rings"; part ] -> (
      match dims part with
      | [ Some rings; Some ring_size ] -> Ok (Ring_of_rings { rings; ring_size })
      | _ -> Error (Printf.sprintf "rings dimensions %S: want NxS" part))
  | _ ->
      Error
        (Printf.sprintf
           "unknown topology family %S (mesh:RxC[xP] | fat-tree:K | rings:NxS)"
           s)
