(** Parameters of a generated topology + flow population.

    Everything is plain data so a spec can be built from CLI flags, test
    code or a bench target alike; {!Topogen.generate} consumes it.  The
    textual forms parsed here ([family_of_string], [mix_of_string]) are
    the ones [gmfnet gen] accepts. *)

type family =
  | Mesh of { rows : int; cols : int; planes : int }
      (** [rows x cols] grid of software switches per plane, duplex links
          between grid neighbors.  [planes = 2] builds a second, disjoint
          copy of the fabric and dual-homes every host onto both planes
          (redundant paths with no parallel edges). *)
  | Fat_tree of { k : int }
      (** Canonical k-ary fat-tree ([k] even): [k] pods of [k/2] edge and
          [k/2] aggregation switches, [(k/2)^2] cores. *)
  | Ring_of_rings of { rings : int; ring_size : int }
      (** [rings] local rings of [ring_size] switches; the first switch
          of every ring is its gateway, and the gateways form a global
          ring. *)

type kind = Mpeg | Voip | Sensor

type mix = (kind * int) list
(** Traffic mix as positive weights, e.g. [(Voip, 3); (Mpeg, 1)]. *)

type t = {
  family : family;
  hosts_per_switch : int;  (** Hosts attached per access switch. *)
  rate_bps : int;  (** Rate of every link. *)
  prop : Gmf_util.Timeunit.ns;  (** Propagation delay of every link. *)
  flows : int;  (** Target flow count. *)
  mix : mix;
  locality : float;
      (** Probability in [0, 1] that a flow's destination is drawn from
          the source's region (same mesh neighborhood / pod / ring)
          rather than uniformly — the knob behind the hop-length
          distribution. *)
  max_util : float;
      (** Per-link and per-ingress utilization ceiling a candidate flow
          may not push any resource past; candidates that would are
          rejected and re-drawn. *)
  prio_lo : int;
  prio_hi : int;
      (** 802.1p band: sensor traffic sits at [prio_lo], VoIP at
          [prio_hi], MPEG in between. *)
  seed : int;
}

val default : t
(** A small single-plane mesh (4x4, 2 hosts/switch, 40 VoIP-heavy flows,
    locality 0.8, max_util 0.7, priorities 1..6, seed 42, 100 Mbit/s). *)

val switch_count : family -> int
(** Switches the family will build — e.g. 500 for
    [Mesh {rows = 25; cols = 20; planes = 1}]. *)

val validate : t -> (unit, string) result

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result

val mix_to_string : mix -> string
val mix_of_string : string -> (mix, string) result
(** ["voip=3,mpeg=1,sensor=2"] — weights must be positive integers. *)

val family_to_string : family -> string
val family_of_string : string -> (family, string) result
(** ["mesh:RxC"], ["mesh:RxCx2"] (dual plane), ["fat-tree:K"],
    ["rings:NxS"]. *)
