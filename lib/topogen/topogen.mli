(** Seeded, parametric scenario generation at TSN scale.

    [generate spec] builds the topology family of [spec], then draws a
    flow population from it: traffic kinds by mix weight, endpoints by
    locality, shortest-path routes, 802.1p priorities banded by kind.
    Candidates that would push any link or ingress rotation past
    [spec.max_util], or whose uncontended response floor already misses a
    deadline, are discarded and re-drawn — so the emitted scenario is
    lint-clean by construction (no GMF201/GMF202/GMF203 and, with
    [max_util <= 0.9], no saturation hints).

    Generation is deterministic: equal specs produce byte-identical
    {!to_string} output on every backend ({!Gmf_util.Rng} does not depend
    on the OCaml runtime).

    Observability: bumps [topogen.nodes], [topogen.links],
    [topogen.flows] and [topogen.rejected] counters and the
    [topogen.gen_seconds] gauge on the default {!Gmf_obs.Metrics}
    registry when it is enabled. *)

type result = {
  spec : Gen_spec.t;  (** The spec that produced this result. *)
  scenario : Traffic.Scenario.t;
  built : Builders.built;
  requested : int;  (** [spec.flows]. *)
  placed : int;  (** Flows actually in the scenario. *)
  rejected : int;
      (** Candidate draws discarded (utilization ceiling, response floor,
          or unreachable endpoint pair) before their slot placed or gave
          up. *)
  gen_seconds : float;
}

val generate : Gen_spec.t -> result
(** Raises [Invalid_argument] when {!Gen_spec.validate} rejects the
    spec. *)

val to_string : Traffic.Scenario.t -> string
(** The scenario in [.gmfnet] syntax ({!Scenario_io.Print.to_string}):
    round-trips through {!Scenario_io.Parse}. *)

val to_file : string -> Traffic.Scenario.t -> unit

val summary : result -> (string * string) list
(** Key/value lines for human output: family, nodes, links, switches,
    flows placed/requested, rejected draws, generation wall time. *)
