(** Topology construction for the generator families.

    Every builder returns the topology plus the host population and a
    region label per host; {!Topogen} draws flow endpoints from the
    hosts and uses the regions to implement locality. *)

type built = {
  topo : Network.Topology.t;
  hosts : Network.Node.id array;  (** All endhosts, in creation order. *)
  host_region : int array;
      (** Region of [hosts.(i)]: the mesh cell ([row * cols + col],
          plane-independent), the fat-tree pod, or the ring index. *)
  switch_count : int;
  link_count : int;  (** Directed links. *)
}

val build :
  rate_bps:int ->
  prop:Gmf_util.Timeunit.ns ->
  hosts_per_switch:int ->
  Gen_spec.family ->
  built
(** Raises [Invalid_argument] on parameters {!Gen_spec.validate} would
    reject. *)

val near_regions : Gen_spec.family -> int -> int -> bool
(** [near_regions family a b]: are regions [a] and [b] "local" to each
    other?  Mesh: Manhattan distance between cells <= 2; fat-tree: same
    pod; rings: same ring. *)
