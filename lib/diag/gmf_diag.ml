type severity = Hint | Warning | Error

type subject =
  | Scenario
  | Config
  | Flow of { id : int; name : string }
  | Frame of { id : int; name : string; frame : int }
  | Node of { id : int; name : string }
  | Link of { src : int; dst : int }

type t = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
  suggestion : string option;
}

let make ~code ~severity ~subject ?suggestion fmt =
  Format.kasprintf
    (fun message -> { code; severity; subject; message; suggestion })
    fmt

let error ~code ~subject ?suggestion fmt =
  make ~code ~severity:Error ~subject ?suggestion fmt

let warning ~code ~subject ?suggestion fmt =
  make ~code ~severity:Warning ~subject ?suggestion fmt

let hint ~code ~subject ?suggestion fmt =
  make ~code ~severity:Hint ~subject ?suggestion fmt

let severity_to_string = function
  | Hint -> "hint"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "hint" -> Some Hint
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let subject_to_string = function
  | Scenario -> "scenario"
  | Config -> "config"
  | Flow { id; name } -> Printf.sprintf "flow %d (%s)" id name
  | Frame { id; name; frame } ->
      Printf.sprintf "flow %d (%s) frame %d" id name frame
  | Node { id; name } -> Printf.sprintf "node %d (%s)" id name
  | Link { src; dst } -> Printf.sprintf "link %d->%d" src dst

let max_severity = function
  | [] -> None
  | d :: ds ->
      Some (List.fold_left (fun acc d -> max acc d.severity) d.severity ds)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let by_severity sev ds = List.filter (fun d -> d.severity = sev) ds
let at_least sev ds = List.filter (fun d -> d.severity >= sev) ds

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s: %s"
    (severity_to_string d.severity)
    d.code
    (subject_to_string d.subject)
    d.message;
  match d.suggestion with
  | None -> ()
  | Some s -> Format.fprintf fmt " (%s)" s

let to_string d = Format.asprintf "%a" pp d

let pp_list fmt ds =
  List.iter (fun d -> Format.fprintf fmt "%a@." pp d) ds;
  let count sev = List.length (by_severity sev ds) in
  Format.fprintf fmt "%d error(s), %d warning(s), %d hint(s)" (count Error)
    (count Warning) (count Hint)
