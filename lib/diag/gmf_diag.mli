(** Structured diagnostics with compiler-style codes.

    Every static check in the tree — the [Gmf_lint] pass, the checked
    constructors of [Traffic.Flow], the admission gate — reports problems
    as values of {!t} instead of bare exception strings.  A diagnostic
    carries a stable code ([GMF0xx] structural, [GMF1xx] model
    preconditions from the paper, [GMF2xx] performance/utilization), a
    severity, the subject it refers to, a human message and an optional
    suggestion.

    This module sits at the bottom of the library graph (only [gmf_util]
    below it) so that traffic, scenario_io, lint and analysis can all
    share the one type. *)

type severity = Hint | Warning | Error
(** Ordered: [Hint < Warning < Error] under the polymorphic compare, so
    [max_severity] and deny-level thresholds can use [(>=)] directly. *)

type subject =
  | Scenario  (** the flow set / scenario as a whole *)
  | Config  (** the analysis configuration *)
  | Flow of { id : int; name : string }
  | Frame of { id : int; name : string; frame : int }
      (** frame [frame] of flow [id] *)
  | Node of { id : int; name : string }
  | Link of { src : int; dst : int }

type t = {
  code : string;  (** stable, e.g. ["GMF201"] *)
  severity : severity;
  subject : subject;
  message : string;
  suggestion : string option;
}

val make :
  code:string ->
  severity:severity ->
  subject:subject ->
  ?suggestion:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [make ~code ~severity ~subject ?suggestion fmt ...] builds a
    diagnostic with a formatted message. *)

val error :
  code:string ->
  subject:subject ->
  ?suggestion:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val warning :
  code:string ->
  subject:subject ->
  ?suggestion:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val hint :
  code:string ->
  subject:subject ->
  ?suggestion:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["hint"]. *)

val severity_of_string : string -> severity option

val subject_to_string : subject -> string
(** Compact rendering: ["scenario"], ["config"], ["flow 3 (voip)"],
    ["flow 3 (voip) frame 1"], ["node 2 (sw0)"], ["link 0->1"]. *)

val max_severity : t list -> severity option
(** [None] on the empty list. *)

val has_errors : t list -> bool

val by_severity : severity -> t list -> t list
(** Diagnostics at exactly the given severity. *)

val at_least : severity -> t list -> t list
(** Diagnostics at or above the given severity. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering:
    [error[GMF201] link 0->1: utilization 1.04 >= 1 (eq 20)]. *)

val to_string : t -> string

val pp_list : Format.formatter -> t list -> unit
(** One diagnostic per line, followed by a severity tally. *)
