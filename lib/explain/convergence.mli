(** Per-round convergence telemetry of the holistic fixpoint.

    Wrap any piece of work in {!record} and every holistic round executed
    inside it (including warm-started session fixpoints) contributes one
    {!round} record: which flows' jitters were still moving, by how much,
    and when each stabilized.  Exported as JSON-lines and as a synthetic
    Chrome-trace "convergence lane". *)

type round = {
  cv_round : int;  (** 1-based round number within one holistic run. *)
  cv_max_delta : Gmf_util.Timeunit.ns;  (** Largest per-flow jitter move. *)
  cv_moving : int;  (** Flows with a nonzero delta this round. *)
  cv_deltas : (Traffic.Flow.id * Gmf_util.Timeunit.ns) list;
      (** Every flow present in the jitter state, sorted by id; 0 = stable
          this round. *)
}

type t = { cv_rounds : round list }  (** In execution order. *)

val record : (unit -> 'a) -> 'a * t
(** [record f] installs the {!Analysis.Holistic} round observer for the
    duration of [f] (clearing it afterwards, even on exceptions) and
    returns [f]'s result with the collected rounds.  Rounds of multiple
    holistic runs inside [f] are concatenated in execution order. *)

val rounds_to_stabilize : t -> (Traffic.Flow.id * int) list
(** Per flow, the last round in which it still moved (0 = never moved),
    sorted by id.  The converged tail of a run scores the round where the
    flow's jitters last changed. *)

val to_jsonl : t -> string
(** One JSON object per round:
    [{"round":N,"moving":M,"max_delta_ns":D,"deltas":[{"flow":ID,
    "delta_ns":D},...]}], newline-terminated. *)

val emit_spans : ?tid:int -> Gmf_obs.Tracer.t -> t -> unit
(** Emits the convergence lane into a tracer: per round one span on [tid]
    (default 2) spanning a fixed 1 ms slot, plus one span per still-moving
    flow on [tid + 1].  Synthetic time — the lane visualizes round
    structure, not wall clock; analysis spans stay on tid 0/1. *)
