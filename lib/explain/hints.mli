(** Nearest-feasible hints for a rejected flow.

    When a scenario is unschedulable, "no" is a poor answer for an
    operator: these probes find the smallest change {e to one flow} that
    admits the set, reusing the {!Analysis.Sensitivity} bisection (and its
    {!Analysis.Case} memo, so repeated probes are cheap). *)

type hint =
  | Payload_scale of float
      (** Scaling the flow's payloads by this factor (< 1) admits the set. *)
  | Priority of int
      (** Moving the flow to this 802.1p class admits the set. *)

val describe : hint -> string
(** One operator-facing sentence, e.g.
    ["scale the flow's payloads by 0.438"]. *)

val for_flow :
  ?exec:Gmf_exec.t ->
  ?config:Analysis.Config.t ->
  Traffic.Scenario.t ->
  flow_id:Traffic.Flow.id ->
  unit ->
  hint list
(** [for_flow scenario ~flow_id ()] probes payload scale (bisection over
    (0, 1], 1% resolution) and every other 802.1p class for the flow,
    returning every hint whose probe admits the scenario — empty when
    nothing short of removal helps.  Deterministic; runs a bounded number
    of holistic analyses (~10 for the bisection + at most 7 priority
    probes).  Raises [Invalid_argument] on an unknown id. *)
