open Gmf_util

let verdict_tag = function
  | Analysis.Holistic.Schedulable -> "schedulable"
  | Analysis.Holistic.Deadline_miss _ -> "deadline-miss"
  | Analysis.Holistic.Analysis_failed _ -> "analysis-failed"
  | Analysis.Holistic.No_fixed_point _ -> "no-fixed-point"

let verdict_line (attr : Attribution.t) =
  Format.asprintf "verdict: %a (after %d round%s)" Analysis.Holistic.pp_verdict
    attr.Attribution.verdict attr.Attribution.rounds
    (if attr.Attribution.rounds = 1 then "" else "s")

let ns = Timeunit.to_string

let summary_table (attr : Attribution.t) =
  let table =
    Tablefmt.create
      ~columns:
        [
          ("flow", Tablefmt.Left); ("prio", Tablefmt.Right);
          ("frame", Tablefmt.Right); ("bound", Tablefmt.Right);
          ("deadline", Tablefmt.Right); ("slack", Tablefmt.Right);
          ("binding hop", Tablefmt.Left); ("binding interferer", Tablefmt.Left);
        ]
  in
  List.iter
    (fun (af : Attribution.flow_attr) ->
      let fa = Attribution.worst_frame af in
      Tablefmt.add_row table
        [
          af.Attribution.af_flow.Traffic.Flow.name;
          string_of_int af.Attribution.af_flow.Traffic.Flow.priority;
          string_of_int fa.Attribution.fa_frame;
          ns fa.Attribution.fa_total;
          ns fa.Attribution.fa_deadline;
          ns (Attribution.slack fa);
          (match Attribution.binding_hop fa with
          | Some h -> Format.asprintf "%a" Analysis.Stage.pp h.Attribution.hop_stage
          | None -> "-");
          (match Attribution.binding_interferer fa with
          | Some (_, name, total) -> Printf.sprintf "%s (%s)" name (ns total)
          | None -> "-");
        ])
    attr.Attribution.flows;
  Tablefmt.render table

let hop_rows table (fa : Attribution.frame_attr) =
  List.iter
    (fun (h : Attribution.hop) ->
      let interference =
        List.fold_left
          (fun acc i -> acc + Attribution.if_total i)
          0 h.Attribution.hop_interference
      in
      Tablefmt.add_row table
        [
          Format.asprintf "%a" Analysis.Stage.pp h.Attribution.hop_stage;
          ns h.Attribution.hop_response;
          ns h.Attribution.hop_transmission;
          ns h.Attribution.hop_software;
          ns h.Attribution.hop_blocking;
          ns h.Attribution.hop_own_carry;
          ns interference;
          Printf.sprintf "q=%d l=%d" h.Attribution.hop_q h.Attribution.hop_l;
        ])
    fa.Attribution.fa_hops

let interference_rows table (fa : Attribution.frame_attr) =
  List.iter
    (fun (h : Attribution.hop) ->
      List.iter
        (fun (i : Attribution.interferer) ->
          Tablefmt.add_row table
            [
              Format.asprintf "%a" Analysis.Stage.pp h.Attribution.hop_stage;
              Printf.sprintf "%s (#%d)" i.Attribution.if_name
                i.Attribution.if_id;
              i.Attribution.if_pattern;
              string_of_int i.Attribution.if_frames;
              ns i.Attribution.if_link;
              ns i.Attribution.if_cpu;
              ns (Attribution.if_total i);
            ])
        h.Attribution.hop_interference)
    fa.Attribution.fa_hops

let detail ?flow (attr : Attribution.t) =
  let selected =
    match flow with
    | Some id ->
        List.filter
          (fun (af : Attribution.flow_attr) ->
            af.Attribution.af_flow.Traffic.Flow.id = id)
          attr.Attribution.flows
    | None -> (
        (* No selection: detail the scenario's worst flow only, so the
           default output stays bounded on large flow sets. *)
        match Attribution.summarize attr with
        | None -> []
        | Some s ->
            List.filter
              (fun (af : Attribution.flow_attr) ->
                af.Attribution.af_flow.Traffic.Flow.id
                = s.Attribution.s_flow_id)
              attr.Attribution.flows)
  in
  selected
  |> List.concat_map (fun (af : Attribution.flow_attr) ->
         af.Attribution.af_frames
         |> List.map (fun (fa : Attribution.frame_attr) ->
                let header =
                  Printf.sprintf "%s frame %d: jitter %s + hops = %s (deadline %s, slack %s)"
                    af.Attribution.af_flow.Traffic.Flow.name
                    fa.Attribution.fa_frame
                    (ns fa.Attribution.fa_jitter)
                    (ns fa.Attribution.fa_total)
                    (ns fa.Attribution.fa_deadline)
                    (ns (Attribution.slack fa))
                in
                let hops =
                  Tablefmt.create
                    ~columns:
                      [
                        ("hop", Tablefmt.Left); ("response", Tablefmt.Right);
                        ("xmit", Tablefmt.Right); ("software", Tablefmt.Right);
                        ("blocking", Tablefmt.Right); ("own", Tablefmt.Right);
                        ("interference", Tablefmt.Right);
                        ("witness", Tablefmt.Left);
                      ]
                in
                hop_rows hops fa;
                let parts = [ header; Tablefmt.render hops ] in
                let has_interference =
                  List.exists
                    (fun (h : Attribution.hop) ->
                      h.Attribution.hop_interference <> [])
                    fa.Attribution.fa_hops
                in
                let parts =
                  if not has_interference then parts
                  else begin
                    let itable =
                      Tablefmt.create
                        ~columns:
                          [
                            ("hop", Tablefmt.Left); ("interferer", Tablefmt.Left);
                            ("pattern", Tablefmt.Left);
                            ("frames", Tablefmt.Right); ("link", Tablefmt.Right);
                            ("cpu", Tablefmt.Right); ("total", Tablefmt.Right);
                          ]
                    in
                    interference_rows itable fa;
                    parts @ [ Tablefmt.render itable ]
                  end
                in
                String.concat "\n" parts))
  |> String.concat "\n"

let rejection ?(hints = []) (attr : Attribution.t) =
  match attr.Attribution.verdict with
  | Analysis.Holistic.Schedulable -> ""
  | verdict ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Format.asprintf "rejected: %a\n" Analysis.Holistic.pp_verdict verdict);
      (match Attribution.summarize attr with
      | Some s when s.Attribution.s_slack < 0 ->
          Buffer.add_string buf
            (Printf.sprintf
               "binding constraint: flow %s frame %d bound %s exceeds deadline %s at %s\n"
               s.Attribution.s_flow s.Attribution.s_frame
               (ns s.Attribution.s_total) (ns s.Attribution.s_deadline)
               s.Attribution.s_hop);
          (match s.Attribution.s_interferer with
          | Some (id, name, total) ->
              Buffer.add_string buf
                (Printf.sprintf "binding interferer: %s (#%d), charging %s\n"
                   name id (ns total))
          | None -> ())
      | _ ->
          (match verdict with
          | Analysis.Holistic.Analysis_failed (f :: _)
          | Analysis.Holistic.Deadline_miss (f :: _) ->
              Buffer.add_string buf
                (Format.asprintf "binding constraint: %a\n"
                   Analysis.Result_types.pp_failure f)
          | _ -> ()));
      List.iter
        (fun hint ->
          Buffer.add_string buf
            (Printf.sprintf "nearest feasible: %s\n" (Hints.describe hint)))
        hints;
      Buffer.contents buf

(* ---------------- JSON ---------------- *)

let esc = Gmf_obs.Export.json_escape

let json_interferer buf (i : Attribution.interferer) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"flow\":%d,\"name\":\"%s\",\"pattern\":\"%s\",\"frames\":%d,\"link_ns\":%d,\"cpu_ns\":%d,\"total_ns\":%d}"
       i.Attribution.if_id
       (esc i.Attribution.if_name)
       (esc i.Attribution.if_pattern)
       i.Attribution.if_frames i.Attribution.if_link i.Attribution.if_cpu
       (Attribution.if_total i))

let json_hop buf (h : Attribution.hop) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"stage\":\"%s\",\"response_ns\":%d,\"min_response_ns\":%d,\"transmission_ns\":%d,\"software_ns\":%d,\"blocking_ns\":%d,\"own_carry_ns\":%d,\"q\":%d,\"l\":%d,\"window_ns\":%d,\"residual_ns\":%d,\"interference\":["
       (esc (Format.asprintf "%a" Analysis.Stage.pp h.Attribution.hop_stage))
       h.Attribution.hop_response h.Attribution.hop_min_response
       h.Attribution.hop_transmission h.Attribution.hop_software
       h.Attribution.hop_blocking h.Attribution.hop_own_carry
       h.Attribution.hop_q h.Attribution.hop_l h.Attribution.hop_window
       h.Attribution.hop_residual);
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      json_interferer buf x)
    h.Attribution.hop_interference;
  Buffer.add_string buf "]}"

let json_frame buf (fa : Attribution.frame_attr) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"frame\":%d,\"release_jitter_ns\":%d,\"total_ns\":%d,\"deadline_ns\":%d,\"slack_ns\":%d,\"exact\":%b,\"hops\":["
       fa.Attribution.fa_frame fa.Attribution.fa_jitter
       fa.Attribution.fa_total fa.Attribution.fa_deadline
       (Attribution.slack fa)
       (Attribution.frame_exact fa));
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      json_hop buf h)
    fa.Attribution.fa_hops;
  Buffer.add_string buf "],";
  (match Attribution.binding_hop fa with
  | Some h ->
      Buffer.add_string buf
        (Printf.sprintf "\"binding_hop\":\"%s\","
           (esc
              (Format.asprintf "%a" Analysis.Stage.pp h.Attribution.hop_stage)))
  | None -> Buffer.add_string buf "\"binding_hop\":null,");
  (match Attribution.binding_interferer fa with
  | Some (id, name, total) ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"binding_interferer\":{\"flow\":%d,\"name\":\"%s\",\"total_ns\":%d}}"
           id (esc name) total)
  | None -> Buffer.add_string buf "\"binding_interferer\":null}")

let json_hint buf = function
  | Hints.Payload_scale s ->
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"payload_scale\",\"scale\":%.4f}" s)
  | Hints.Priority p ->
      Buffer.add_string buf
        (Printf.sprintf "{\"kind\":\"priority\",\"priority\":%d}" p)

let to_json ?flow ?(hints = []) (attr : Attribution.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"verdict\":\"%s\",\"rounds\":%d,\"flows\":["
       (verdict_tag attr.Attribution.verdict)
       attr.Attribution.rounds);
  let flows =
    match flow with
    | None -> attr.Attribution.flows
    | Some id ->
        List.filter
          (fun (af : Attribution.flow_attr) ->
            af.Attribution.af_flow.Traffic.Flow.id = id)
          attr.Attribution.flows
  in
  List.iteri
    (fun i (af : Attribution.flow_attr) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"flow\":%d,\"name\":\"%s\",\"priority\":%d,\"frames\":["
           af.Attribution.af_flow.Traffic.Flow.id
           (esc af.Attribution.af_flow.Traffic.Flow.name)
           af.Attribution.af_flow.Traffic.Flow.priority);
      List.iteri
        (fun k fa ->
          if k > 0 then Buffer.add_char buf ',';
          json_frame buf fa)
        af.Attribution.af_frames;
      Buffer.add_string buf "]}")
    flows;
  Buffer.add_string buf "],";
  (match Attribution.summarize attr with
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"worst\":{\"flow\":%d,\"name\":\"%s\",\"frame\":%d,\"slack_ns\":%d,\"hop\":\"%s\"},"
           s.Attribution.s_flow_id
           (esc s.Attribution.s_flow)
           s.Attribution.s_frame s.Attribution.s_slack
           (esc s.Attribution.s_hop))
  | None -> Buffer.add_string buf "\"worst\":null,");
  Buffer.add_string buf "\"hints\":[";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      json_hint buf h)
    hints;
  Buffer.add_string buf "]}";
  Buffer.add_string buf "\n";
  Buffer.contents buf
