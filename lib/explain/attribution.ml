open Gmf_util
open Analysis

type interferer = {
  if_id : Traffic.Flow.id;
  if_name : string;
  if_pattern : string;
  if_frames : int;
  if_link : Timeunit.ns;
  if_cpu : Timeunit.ns;
}

let if_total i = i.if_link + i.if_cpu

type hop = {
  hop_stage : Stage.t;
  hop_response : Timeunit.ns;
  hop_min_response : Timeunit.ns;
  hop_transmission : Timeunit.ns;
  hop_software : Timeunit.ns;
  hop_blocking : Timeunit.ns;
  hop_own_carry : Timeunit.ns;
  hop_interference : interferer list;
  hop_q : int;
  hop_l : int;
  hop_window : Timeunit.ns;
  hop_residual : Timeunit.ns;
}

type frame_attr = {
  fa_frame : int;
  fa_jitter : Timeunit.ns;
  fa_hops : hop list;
  fa_total : Timeunit.ns;
  fa_deadline : Timeunit.ns;
}

type flow_attr = {
  af_flow : Traffic.Flow.t;
  af_frames : frame_attr list;
}

type t = {
  verdict : Holistic.verdict;
  rounds : int;
  flows : flow_attr list;
}

let slack fa = fa.fa_deadline - fa.fa_total

(* The GMF frame-pattern summary attached to every interferer: how many
   frames its cycle has and how long the cycle is — enough to recognize the
   stream in a report without chasing its id. *)
let pattern j =
  Printf.sprintf "%d frame%s / %s cycle" (Traffic.Flow.n j)
    (if Traffic.Flow.n j = 1 then "" else "s")
    (Timeunit.to_string (Traffic.Flow.tsum j))

(* Re-evaluates every term of the stage recurrence at the recorded witness
   (w_q, w_l, w_last).  At a jitter fixed point the converged window w
   satisfies w = base + sum of per-interferer demands evaluated at
   w + extra_j, so the decomposition below sums to the stage response
   exactly; [hop_residual] (0 at a fixed point) makes any violation — e.g.
   attribution of a non-converged report — visible instead of silent. *)
let hop_of_stage ctx flow ~frame (sr : Result_types.stage_response) =
  let scenario = Ctx.scenario ctx in
  let q = sr.Result_types.w_q
  and l = sr.Result_types.w_l
  and w = sr.Result_types.w_last in
  let stage = sr.Result_types.stage in
  let tsum_i = Traffic.Flow.tsum flow in
  let periods = Gmf.Spec.periods flow.Traffic.Flow.spec in
  let pre_t = Stage_common.window_before periods ~k:frame ~len:l in
  let sep = (q * tsum_i) + pre_t in
  let extra j = Ctx.extra ctx j ~stage in
  let mk j ~link ~cpu ~frames =
    {
      if_id = j.Traffic.Flow.id;
      if_name = j.Traffic.Flow.name;
      if_pattern = pattern j;
      if_frames = frames;
      if_link = link;
      if_cpu = cpu;
    }
  in
  let sort ifs =
    List.sort
      (fun a b -> compare (if_total b, a.if_id) (if_total a, b.if_id))
      ifs
  in
  let others_on ~src ~dst =
    Traffic.Scenario.flows_on scenario ~src ~dst
    |> List.filter (fun j -> j.Traffic.Flow.id <> flow.Traffic.Flow.id)
  in
  let finish ~transmission ~software ~blocking ~own_carry ~interference =
    let parts =
      transmission + software + blocking + own_carry
      + List.fold_left (fun acc i -> acc + if_total i) 0 interference
    in
    {
      hop_stage = stage;
      hop_response = sr.Result_types.response;
      hop_min_response = Pipeline.stage_min_response ctx flow ~frame stage;
      hop_transmission = transmission;
      hop_software = software;
      hop_blocking = blocking;
      hop_own_carry = own_carry;
      hop_interference = interference;
      hop_q = q;
      hop_l = l;
      hop_window = w;
      hop_residual = sr.Result_types.response - parts;
    }
  in
  match stage with
  | Stage.First_link (s, d) ->
      let own = Ctx.params ctx flow ~src:s ~dst:d in
      let c_k = own.Traffic.Link_params.c.(frame) in
      let prop = own.Traffic.Link_params.link.Network.Link.prop in
      let csum_i = Traffic.Link_params.csum own in
      let pre_c =
        Stage_common.window_before own.Traffic.Link_params.c ~k:frame ~len:l
      in
      let interference =
        others_on ~src:s ~dst:d
        |> List.map (fun j ->
               let dt = w + extra j in
               mk j
                 ~link:(Ctx.mx ctx j ~src:s ~dst:d ~dt)
                 ~cpu:0
                 ~frames:(Ctx.nx ctx j ~src:s ~dst:d ~dt))
        |> sort
      in
      finish ~transmission:(c_k + prop) ~software:0 ~blocking:0
        ~own_carry:((q * csum_i) + pre_c - sep)
        ~interference
  | Stage.Ingress node ->
      let p = Network.Route.prec flow.Traffic.Flow.route node in
      let circ = Traffic.Scenario.circ scenario node in
      let own = Ctx.params ctx flow ~src:p ~dst:node in
      let m_k = own.Traffic.Link_params.eth_frames.(frame) in
      let nsum_i = Traffic.Link_params.nsum own in
      let pre_m =
        Stage_common.window_before own.Traffic.Link_params.eth_frames
          ~k:frame ~len:l
      in
      let own_charge =
        match (Ctx.config ctx).Config.variant with
        | Config.Faithful -> q * circ
        | Config.Repaired -> ((q * nsum_i) + pre_m + (m_k - 1)) * circ
      in
      let interference =
        others_on ~src:p ~dst:node
        |> List.map (fun j ->
               let dt = w + extra j in
               let frames = Ctx.nx ctx j ~src:p ~dst:node ~dt in
               mk j ~link:0 ~cpu:(frames * circ) ~frames)
        |> sort
      in
      finish ~transmission:0 ~software:circ ~blocking:0
        ~own_carry:(own_charge - sep) ~interference
  | Stage.Egress (node, d) ->
      let circ = Traffic.Scenario.circ scenario node in
      let own = Ctx.params ctx flow ~src:node ~dst:d in
      let c_k = own.Traffic.Link_params.c.(frame) in
      let m_k = own.Traffic.Link_params.eth_frames.(frame) in
      let csum_i = Traffic.Link_params.csum own in
      let nsum_i = Traffic.Link_params.nsum own in
      let mft = Traffic.Link_params.mft own in
      let prop = own.Traffic.Link_params.link.Network.Link.prop in
      let pre_c =
        Stage_common.window_before own.Traffic.Link_params.c ~k:frame ~len:l
      in
      let pre_m =
        Stage_common.window_before own.Traffic.Link_params.eth_frames
          ~k:frame ~len:l
      in
      let own_rotations =
        match (Ctx.config ctx).Config.variant with
        | Config.Faithful -> 0
        | Config.Repaired -> ((q * nsum_i) + pre_m + m_k) * circ
      in
      let own_work = (q * csum_i) + pre_c in
      let interference =
        Traffic.Scenario.hep scenario flow ~node
        |> List.map (fun j ->
               let dt = w + extra j in
               let link = Ctx.mx ctx j ~src:node ~dst:d ~dt in
               let frames = Ctx.nx ctx j ~src:node ~dst:d ~dt in
               mk j ~link ~cpu:(frames * circ) ~frames)
        |> sort
      in
      finish ~transmission:(c_k + prop) ~software:own_rotations
        ~blocking:mft
        ~own_carry:(own_work - sep)
        ~interference

let frame_of_result ctx flow (fr : Result_types.frame_result) =
  let spec_frame =
    Gmf.Spec.frame flow.Traffic.Flow.spec fr.Result_types.frame
  in
  {
    fa_frame = fr.Result_types.frame;
    fa_jitter = spec_frame.Gmf.Frame_spec.jitter;
    fa_hops =
      List.map
        (hop_of_stage ctx flow ~frame:fr.Result_types.frame)
        fr.Result_types.stages;
    fa_total = fr.Result_types.total;
    fa_deadline = fr.Result_types.deadline;
  }

let of_ctx ctx (report : Holistic.report) =
  {
    verdict = report.Holistic.verdict;
    rounds = report.Holistic.rounds;
    flows =
      List.map
        (fun (res : Result_types.flow_result) ->
          let flow = res.Result_types.flow in
          {
            af_flow = flow;
            af_frames =
              Array.to_list res.Result_types.frames
              |> List.map (frame_of_result ctx flow);
          })
        report.Holistic.results;
  }

let analyze ?config scenario =
  let ctx = Ctx.create ?config scenario in
  let report = Holistic.run ctx in
  (of_ctx ctx report, report)

(* ---------------- binding-term queries ---------------- *)

let frame_exact fa =
  let hop_sum =
    List.fold_left (fun acc h -> acc + h.hop_response) 0 fa.fa_hops
  in
  fa.fa_jitter + hop_sum = fa.fa_total
  && List.for_all (fun h -> h.hop_residual = 0) fa.fa_hops

let worst_frame af =
  match af.af_frames with
  | [] -> invalid_arg "Attribution.worst_frame: no frames"
  | fa0 :: rest ->
      List.fold_left
        (fun best fa -> if slack fa < slack best then fa else best)
        fa0 rest

let binding_hop fa =
  match fa.fa_hops with
  | [] -> None
  | h0 :: rest ->
      Some
        (List.fold_left
           (fun best h ->
             if h.hop_response > best.hop_response then h else best)
           h0 rest)

let interferer_shares fa =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun h ->
      List.iter
        (fun i ->
          let cur =
            match Hashtbl.find_opt tbl i.if_id with
            | Some (_, total) -> total
            | None -> 0
          in
          Hashtbl.replace tbl i.if_id (i.if_name, cur + if_total i))
        h.hop_interference)
    fa.fa_hops;
  Hashtbl.fold (fun id (name, total) acc -> (id, name, total) :: acc) tbl []
  |> List.sort (fun (ia, _, ta) (ib, _, tb) -> compare (tb, ia) (ta, ib))

let binding_interferer fa =
  match interferer_shares fa with
  | (_, _, 0) :: _ | [] -> None
  | top :: _ -> Some top

(* ---------------- one-line summary ---------------- *)

type summary = {
  s_flow_id : Traffic.Flow.id;
  s_flow : string;
  s_frame : int;
  s_total : Timeunit.ns;
  s_deadline : Timeunit.ns;
  s_slack : Timeunit.ns;
  s_hop : string;
  s_interferer : (Traffic.Flow.id * string * Timeunit.ns) option;
}

let summarize t =
  match t.flows with
  | [] -> None
  | flows ->
      let af, fa =
        List.map (fun af -> (af, worst_frame af)) flows
        |> List.fold_left
             (fun (baf, bfa) (af, fa) ->
               if slack fa < slack bfa then (af, fa) else (baf, bfa))
             (List.hd flows, worst_frame (List.hd flows))
      in
      Some
        {
          s_flow_id = af.af_flow.Traffic.Flow.id;
          s_flow = af.af_flow.Traffic.Flow.name;
          s_frame = fa.fa_frame;
          s_total = fa.fa_total;
          s_deadline = fa.fa_deadline;
          s_slack = slack fa;
          s_hop =
            (match binding_hop fa with
            | Some h -> Format.asprintf "%a" Stage.pp h.hop_stage
            | None -> "-");
          s_interferer = binding_interferer fa;
        }
