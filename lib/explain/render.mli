(** Terminal-table and JSON renderings of an {!Attribution}.

    Both renderings are deterministic functions of the attribution (no
    clocks, no hash order), so they golden-test cleanly. *)

val verdict_line : Attribution.t -> string
(** ["verdict: schedulable (after 3 rounds)"]. *)

val summary_table : Attribution.t -> string
(** One row per flow: its worst frame's bound/deadline/slack and the
    binding hop and interferer, via {!Gmf_util.Tablefmt}. *)

val detail : ?flow:Traffic.Flow.id -> Attribution.t -> string
(** Per-frame hop decomposition and per-interferer tables for [flow] —
    the scenario's worst flow when omitted. *)

val rejection : ?hints:Hints.hint list -> Attribution.t -> string
(** Empty string when schedulable; otherwise the violated binding
    constraint ("flow X frame K bound B exceeds deadline D at HOP"), the
    binding interferer, and one "nearest feasible" line per hint. *)

val to_json :
  ?flow:Traffic.Flow.id -> ?hints:Hints.hint list -> Attribution.t -> string
(** The complete attribution as one JSON document (newline-terminated):
    verdict, rounds, per-flow/per-frame/per-hop terms (all in ns, summing
    to the holistic bound exactly — the ["exact"] flag asserts it), the
    worst-frame summary, and any hints.  [?flow] restricts the flows
    array; parseable by {!Gmf_obs.Export.Json.parse}. *)
