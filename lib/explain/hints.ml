open Analysis

type hint = Payload_scale of float | Priority of int

let describe = function
  | Payload_scale s -> Printf.sprintf "scale the flow's payloads by %.3f" s
  | Priority p -> Printf.sprintf "change the flow's priority to %d" p

let rebuild_with scenario ~flow_id ~f =
  Traffic.Scenario.map_flows scenario ~f:(fun flow ->
      if flow.Traffic.Flow.id = flow_id then f flow else flow)

let with_priority flow priority =
  let rebuilt =
    Traffic.Flow.make ~id:flow.Traffic.Flow.id ~name:flow.Traffic.Flow.name
      ~spec:flow.Traffic.Flow.spec ~encap:flow.Traffic.Flow.encap
      ~route:flow.Traffic.Flow.route ~priority
  in
  Traffic.Flow.with_remarks rebuilt flow.Traffic.Flow.remarks

let payload_hint ?exec ?config scenario ~flow_id =
  let build ~scale =
    rebuild_with scenario ~flow_id ~f:(fun flow ->
        Traffic.Flow.scale_payloads flow scale)
  in
  match Sensitivity.max_payload_scale ?exec ?config ~hi:1.0 ~build () with
  | Some scale when scale < 1.0 -> Some (Payload_scale scale)
  | _ -> None

let priority_hint ?exec ?config scenario ~flow_id =
  let current = (Traffic.Scenario.flow scenario flow_id).Traffic.Flow.priority in
  (* Probe the other 802.1p classes top-down: the smallest change that
     admits is usually a raise, but a lower class can also help (it takes
     this flow out of higher flows' hep sets). *)
  let candidates =
    List.init 8 (fun p -> 7 - p) |> List.filter (fun p -> p <> current)
  in
  List.find_map
    (fun priority ->
      let probe =
        rebuild_with scenario ~flow_id ~f:(fun flow ->
            with_priority flow priority)
      in
      if Case.schedulable ?exec ?config probe then Some (Priority priority)
      else None)
    candidates

let for_flow ?exec ?config scenario ~flow_id () =
  if not (List.exists
            (fun f -> f.Traffic.Flow.id = flow_id)
            (Traffic.Scenario.flows scenario))
  then invalid_arg "Hints.for_flow: unknown flow id";
  List.filter_map
    (fun probe -> probe ?exec ?config scenario ~flow_id)
    [ payload_hint; priority_hint ]
