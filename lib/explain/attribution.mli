(** Exact decomposition of every end-to-end response-time bound.

    Every stage bound of the analysis is [R = w - sep + tail], where the
    queuing window [w] converged on a recurrence that is a {e sum} of
    closed-form terms: the flow's own carried-in work, per-interferer MX
    (link time) and NX·CIRC (switch software) demands, plus constant
    transmission/blocking terms.  {!Stage_common.run} records the winning
    busy-period shape [(q, l)] and its converged window as a witness in
    {!Analysis.Result_types.stage_response}; this module re-evaluates each
    term at that witness, so the parts sum to the stage response {e
    exactly} (property-tested), and the per-frame total equals source
    jitter + the sum of hop responses.

    Validity: the decomposition is exact when the report's jitter state is
    a fixed point ([Schedulable] or [Deadline_miss] verdicts) and the
    attribution is computed on the {e same} context, before further runs
    mutate its jitters.  [hop_residual] is the difference between the
    stage response and the summed parts — 0 at a fixed point, nonzero
    (rather than silently wrong) on a non-converged report. *)

(** One interfering flow's charge at one hop.  [if_link] is the MX link-time
    demand, [if_cpu] the NX·CIRC switch-software demand ([if_frames] is that
    NX count); each is 0 at stages where the recurrence has no such term. *)
type interferer = {
  if_id : Traffic.Flow.id;
  if_name : string;
  if_pattern : string;  (** Frame-pattern summary, e.g. ["3 frames / 99ms cycle"]. *)
  if_frames : int;
  if_link : Gmf_util.Timeunit.ns;
  if_cpu : Gmf_util.Timeunit.ns;
}

val if_total : interferer -> Gmf_util.Timeunit.ns
(** [if_link + if_cpu]: the interferer's total charge at the hop. *)

type hop = {
  hop_stage : Analysis.Stage.t;
  hop_response : Gmf_util.Timeunit.ns;  (** The stage bound being decomposed. *)
  hop_min_response : Gmf_util.Timeunit.ns;
      (** Uncontended floor ({!Analysis.Pipeline.stage_min_response}). *)
  hop_transmission : Gmf_util.Timeunit.ns;
      (** Own frame's transmission + propagation (link stages; 0 at ingress). *)
  hop_software : Gmf_util.Timeunit.ns;
      (** Own switch-software rotations: the final CIRC dequeue at ingress,
          the flow's own rotation charge at egress (Repaired variant). *)
  hop_blocking : Gmf_util.Timeunit.ns;
      (** Lower-priority blocking — the MFT term of the egress recurrence. *)
  hop_own_carry : Gmf_util.Timeunit.ns;
      (** Own earlier frames' work carried into the busy period, minus the
          separation credit (q·TSUM + predecessor periods); may be
          negative — it is a net term, not a duration. *)
  hop_interference : interferer list;  (** Descending {!if_total}. *)
  hop_q : int;  (** Witness busy-period shape: whole own cycles. *)
  hop_l : int;  (** Witness: own predecessor frames (repair R8). *)
  hop_window : Gmf_util.Timeunit.ns;  (** Witness converged window w. *)
  hop_residual : Gmf_util.Timeunit.ns;
      (** [hop_response] − sum of all parts; 0 at a jitter fixed point. *)
}

type frame_attr = {
  fa_frame : int;
  fa_jitter : Gmf_util.Timeunit.ns;  (** Source release jitter GJ_i^k. *)
  fa_hops : hop list;  (** Route traversal order. *)
  fa_total : Gmf_util.Timeunit.ns;  (** = [fa_jitter] + Σ hop responses. *)
  fa_deadline : Gmf_util.Timeunit.ns;
}

type flow_attr = {
  af_flow : Traffic.Flow.t;
  af_frames : frame_attr list;  (** Frame 0 first. *)
}

type t = {
  verdict : Analysis.Holistic.verdict;
  rounds : int;
  flows : flow_attr list;
}

val slack : frame_attr -> Gmf_util.Timeunit.ns
(** [fa_deadline - fa_total]; negative on a miss. *)

val of_ctx : Analysis.Ctx.t -> Analysis.Holistic.report -> t
(** [of_ctx ctx report] decomposes every bound of [report] against [ctx]'s
    current jitter state — call it right after the {!Analysis.Holistic} run
    that produced [report], on the same context. *)

val analyze : ?config:Analysis.Config.t -> Traffic.Scenario.t -> t * Analysis.Holistic.report
(** One-shot convenience: run the holistic analysis and attribute it. *)

val frame_exact : frame_attr -> bool
(** True iff the frame's decomposition is exact: jitter + hop responses sum
    to the total and every hop residual is 0. *)

val worst_frame : flow_attr -> frame_attr
(** Smallest slack.  Raises [Invalid_argument] on an empty frame list. *)

val binding_hop : frame_attr -> hop option
(** The hop contributing the largest stage response. *)

val interferer_shares :
  frame_attr -> (Traffic.Flow.id * string * Gmf_util.Timeunit.ns) list
(** Each interfering flow's total charge summed across the frame's hops,
    descending. *)

val binding_interferer :
  frame_attr -> (Traffic.Flow.id * string * Gmf_util.Timeunit.ns) option
(** Head of {!interferer_shares}; [None] when the frame suffers no
    (nonzero) interference. *)

(** Compact record for session outcomes and one-line renderings: the
    scenario's worst (smallest-slack) frame and what binds it. *)
type summary = {
  s_flow_id : Traffic.Flow.id;
  s_flow : string;
  s_frame : int;
  s_total : Gmf_util.Timeunit.ns;
  s_deadline : Gmf_util.Timeunit.ns;
  s_slack : Gmf_util.Timeunit.ns;
  s_hop : string;  (** Binding hop, rendered ("out(4->6)"); "-" if none. *)
  s_interferer : (Traffic.Flow.id * string * Gmf_util.Timeunit.ns) option;
      (** Binding interferer of that frame with its total charge. *)
}

val summarize : t -> summary option
(** [None] when the attribution holds no flows (e.g. lint-rejected). *)
