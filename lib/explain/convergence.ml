open Gmf_util

type round = {
  cv_round : int;
  cv_max_delta : Timeunit.ns;
  cv_moving : int;
  cv_deltas : (Traffic.Flow.id * Timeunit.ns) list;
}

type t = { cv_rounds : round list }

let record f =
  let acc = ref [] in
  let observe (o : Analysis.Holistic.round_observation) =
    let moving =
      List.length
        (List.filter (fun (_, d) -> d > 0) o.Analysis.Holistic.obs_flow_deltas)
    in
    acc :=
      {
        cv_round = o.Analysis.Holistic.obs_round;
        cv_max_delta = o.Analysis.Holistic.obs_max_delta;
        cv_moving = moving;
        cv_deltas = o.Analysis.Holistic.obs_flow_deltas;
      }
      :: !acc
  in
  Analysis.Holistic.set_round_observer (Some observe);
  let result =
    Fun.protect
      ~finally:(fun () -> Analysis.Holistic.set_round_observer None)
      f
  in
  (result, { cv_rounds = List.rev !acc })

let rounds_to_stabilize t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun (flow, d) ->
          if not (Hashtbl.mem tbl flow) then Hashtbl.replace tbl flow 0;
          if d > 0 then Hashtbl.replace tbl flow r.cv_round)
        r.cv_deltas)
    t.cv_rounds;
  Hashtbl.fold (fun flow n acc -> (flow, n) :: acc) tbl []
  |> List.sort compare

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      let deltas =
        r.cv_deltas
        |> List.map (fun (flow, d) ->
               Printf.sprintf "{\"flow\":%d,\"delta_ns\":%d}" flow d)
        |> String.concat ","
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"round\":%d,\"moving\":%d,\"max_delta_ns\":%d,\"deltas\":[%s]}\n"
           r.cv_round r.cv_moving r.cv_max_delta deltas))
    t.cv_rounds;
  Buffer.contents buf

(* One synthetic lane in the Chrome trace: round n occupies the fixed slot
   [(n-1)·1ms, n·1ms) on its own tid, with one span per still-moving flow
   inside it.  The lane is not wall-clock (holistic rounds are) — it shows
   *which* flows kept the fixpoint iterating and for how many rounds. *)
let round_slot_ns = 1_000_000

let emit_spans ?(tid = 2) tracer t =
  List.iter
    (fun r ->
      let begin_ns = (r.cv_round - 1) * round_slot_ns in
      let end_ns = r.cv_round * round_slot_ns in
      Gmf_obs.Tracer.emit ~cat:"convergence" ~tid tracer
        ~name:(Printf.sprintf "round %d (%d moving)" r.cv_round r.cv_moving)
        ~begin_ns ~end_ns;
      List.iter
        (fun (flow, d) ->
          if d > 0 then
            Gmf_obs.Tracer.emit ~cat:"convergence" ~tid:(tid + 1) tracer
              ~name:(Printf.sprintf "flow#%d moved %s" flow
                       (Timeunit.to_string d))
              ~begin_ns ~end_ns)
        r.cv_deltas)
    t.cv_rounds
