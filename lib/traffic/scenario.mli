(** A complete analyzable/simulatable setting: topology + switch cost models
    + flow set.

    This is the unit the analysis, the simulator, the admission controller
    and the experiments all operate on. *)

type t

val make :
  ?switches:(Network.Node.id * Click.Switch_model.t) list ->
  topo:Network.Topology.t ->
  flows:Flow.t list ->
  unit ->
  t
(** [make ?switches ~topo ~flows ()] validates and builds a scenario.

    Every switch node that appears as an intermediate of some route needs a
    {!Click.Switch_model}; nodes not listed in [switches] get a default
    model with [ninterfaces = degree of the node] and the paper's measured
    CROUTE/CSEND.

    Raises [Invalid_argument] on duplicate flow ids, a [switches] entry for
    a non-switch node, or a model whose interface count is below the node's
    degree. *)

val topo : t -> Network.Topology.t

val flows : t -> Flow.t list
(** All flows, in id order. *)

val flow : t -> Flow.id -> Flow.t
(** Raises [Invalid_argument] on an unknown id. *)

val flow_count : t -> int

val switch_model : t -> Network.Node.id -> Click.Switch_model.t
(** The cost model of a switch node.  Raises [Invalid_argument] when the
    node is not a switch. *)

val switch_nodes : t -> Network.Node.id list
(** Every switch node with a model (explicit or defaulted), ascending. *)

val circ : t -> Network.Node.id -> Gmf_util.Timeunit.ns
(** CIRC(N) of a switch node. *)

val flows_on : t -> src:Network.Node.id -> dst:Network.Node.id -> Flow.t list
(** flows(N1,N2): every flow whose route contains the hop [src -> dst]
    (paper Section 3). *)

val hep : t -> Flow.t -> node:Network.Node.id -> Flow.t list
(** hep(tau_i, N) of eq (2): flows other than [tau_i] leaving [node] on the
    same link as [tau_i] (i.e. towards succ(tau_i, node)) with priority
    higher than or equal to [tau_i]'s. *)

val lp : t -> Flow.t -> node:Network.Node.id -> Flow.t list
(** lp(tau_i, N) of eq (3): the remaining flows on that link — strictly
    lower priority. *)

val params : t -> Flow.t -> src:Network.Node.id -> dst:Network.Node.id ->
  Link_params.t
(** Cached per-(flow, link) derived parameters. *)

val link_utilization : t -> src:Network.Node.id -> dst:Network.Node.id -> float
(** Sum over flows(src,dst) of CSUM/TSUM — the left side of eq (20). *)

val cached : t -> key:string -> (unit -> string) -> string
(** [cached t ~key compute] memoizes a derived string per scenario value
    (computed at most once per key).  Scenarios are immutable once built,
    so any function of the scenario alone — plus whatever the caller
    encodes into [key], e.g. an analysis config — is safe to cache this
    way.  Used by [Analysis.Case.digest] so repeated memo probes stop
    re-serializing the whole scenario.  The slot lives inside the value:
    a scenario marshalled to a worker process carries (and keeps) its own
    cache, with no global revision counter to fall out of sync. *)

val map_flows : t -> f:(Flow.t -> Flow.t) -> t
(** [map_flows t ~f] rebuilds the scenario with every flow transformed
    (same topology and switch models).  [f] must preserve flow ids'
    uniqueness. *)

val pp : Format.formatter -> t -> unit
