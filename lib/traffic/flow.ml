type id = int

type t = {
  id : id;
  name : string;
  spec : Gmf.Spec.t;
  encap : Ethernet.Encap.t;
  route : Network.Route.t;
  priority : int;
  remarks : ((Network.Node.id * Network.Node.id) * int) list;
}

(* Raising wrappers reproduce the historical [Invalid_argument] strings;
   the prefix depends on which constructor the code belongs to (priority
   checks always raised under the [Flow.make:] banner, even from
   [with_remarks]). *)
let raise_diag d =
  let prefix =
    match d.Gmf_diag.code with
    | "GMF011" | "GMF012" -> "Flow.with_remarks: "
    | "GMF013" -> "Flow.scale_payloads: "
    | _ -> "Flow.make: "
  in
  invalid_arg (prefix ^ d.Gmf_diag.message)

let checked_priority ~subject p =
  if p < 0 || p > 7 then
    Error
      (Gmf_diag.error ~code:"GMF010" ~subject
         ~suggestion:
           (Printf.sprintf "got %d; 802.1p code points are integers in 0..7" p)
         "priority outside the 802.1p range 0..7")
  else Ok ()

let make_checked ~id ~name ~spec ~encap ~route ~priority =
  if id < 0 then invalid_arg "Flow.make: negative id";
  match checked_priority ~subject:(Gmf_diag.Flow { id; name }) priority with
  | Error _ as e -> e
  | Ok () -> Ok { id; name; spec; encap; route; priority; remarks = [] }

let make ~id ~name ~spec ~encap ~route ~priority =
  match make_checked ~id ~name ~spec ~encap ~route ~priority with
  | Ok t -> t
  | Error d -> raise_diag d

let with_remarks_checked t remarks =
  let subject = Gmf_diag.Flow { id = t.id; name = t.name } in
  let hops = Network.Route.hops t.route in
  let seen = Hashtbl.create 4 in
  let rec go = function
    | [] -> Ok { t with remarks }
    | ((src, dst), p) :: rest -> (
        match checked_priority ~subject p with
        | Error _ as e -> e
        | Ok () ->
            if not (List.mem (src, dst) hops) then
              Error
                (Gmf_diag.error ~code:"GMF011" ~subject
                   ~suggestion:"remarks may only name links the route crosses"
                   "remark on hop %d->%d not on the route" src dst)
            else if Hashtbl.mem seen (src, dst) then
              Error
                (Gmf_diag.error ~code:"GMF012" ~subject
                   ~suggestion:"keep a single remark per link"
                   "hop %d->%d remarked twice" src dst)
            else (
              Hashtbl.replace seen (src, dst) ();
              go rest))
  in
  go remarks

let with_remarks t remarks =
  match with_remarks_checked t remarks with
  | Ok t -> t
  | Error d -> raise_diag d

let scale_payloads_checked t factor =
  if factor <= 0. then
    Error
      (Gmf_diag.error ~code:"GMF013"
         ~subject:(Gmf_diag.Flow { id = t.id; name = t.name })
         ~suggestion:(Printf.sprintf "got %g; the factor must be > 0" factor)
         "non-positive factor")
  else
    let scale (f : Gmf.Frame_spec.t) =
      Gmf.Frame_spec.make ~period:f.period ~deadline:f.deadline
        ~jitter:f.jitter
        ~payload_bits:
          (max 1
             (int_of_float
                (Float.round (float_of_int f.payload_bits *. factor))))
    in
    let spec =
      Gmf.Spec.make (List.map scale (Array.to_list (Gmf.Spec.frames t.spec)))
    in
    Ok { t with spec }

let scale_payloads t factor =
  match scale_payloads_checked t factor with
  | Ok t -> t
  | Error d -> raise_diag d

let priority_on t ~src ~dst =
  match List.assoc_opt (src, dst) t.remarks with
  | Some p -> p
  | None -> t.priority

let n t = Gmf.Spec.n t.spec
let tsum t = Gmf.Spec.tsum t.spec

let nbits t k =
  let frame = Gmf.Spec.frame t.spec k in
  Ethernet.Encap.nbits t.encap ~payload_bits:frame.Gmf.Frame_spec.payload_bits

let nbits_all t = Array.init (n t) (fun k -> nbits t k)

let source t = Network.Route.source t.route
let destination t = Network.Route.destination t.route

let equal_priority_or_higher ~than ~src ~dst t =
  priority_on t ~src ~dst >= priority_on than ~src ~dst

let pp fmt t =
  Format.fprintf fmt "flow%d(%s, prio=%d, %a, route=%a, n=%d)" t.id t.name
    t.priority Ethernet.Encap.pp t.encap Network.Route.pp t.route (n t)
