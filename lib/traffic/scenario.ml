type t = {
  topo : Network.Topology.t;
  flows : Flow.t array; (* sorted by id *)
  switches : (Network.Node.id, Click.Switch_model.t) Hashtbl.t;
  params_cache : (Flow.id * Network.Node.id * Network.Node.id, Link_params.t)
    Hashtbl.t;
  by_id : (Flow.id, Flow.t) Hashtbl.t;
  (* (src, dst) -> flows whose route contains that hop, in id order.  Built
     once in [make]; turns the per-stage interferer collection from a scan
     over every flow into a lookup. *)
  on_link : (Network.Node.id * Network.Node.id, Flow.t list) Hashtbl.t;
  (* hep/lp sets are route- and priority-static, so they are shared across
     every frame, busy-window iteration and holistic round. *)
  hep_cache : (Flow.id * Network.Node.id, Flow.t list) Hashtbl.t;
  lp_cache : (Flow.id * Network.Node.id, Flow.t list) Hashtbl.t;
  (* Derived-string memo slots (e.g. the canonical analysis-case digest,
     keyed by the config it was computed under).  Tied to the value, not
     to a global revision counter, so scenarios marshalled to worker
     processes stay self-consistent. *)
  derived : (string, string) Hashtbl.t;
}

let make ?(switches = []) ~topo ~flows () =
  let flows = Array.of_list flows in
  Array.sort (fun a b -> compare a.Flow.id b.Flow.id) flows;
  for i = 1 to Array.length flows - 1 do
    if flows.(i).Flow.id = flows.(i - 1).Flow.id then
      invalid_arg
        (Printf.sprintf "Scenario.make: duplicate flow id %d" flows.(i).Flow.id)
  done;
  let table = Hashtbl.create 16 in
  List.iter
    (fun (node_id, model) ->
      let node = Network.Topology.node topo node_id in
      if not (Network.Node.is_switch node) then
        invalid_arg
          (Printf.sprintf "Scenario.make: node %d is not a switch" node_id);
      let degree = Network.Topology.degree topo node_id in
      if model.Click.Switch_model.ninterfaces < degree then
        invalid_arg
          (Printf.sprintf
             "Scenario.make: switch %d has %d links but model has %d ports"
             node_id degree model.Click.Switch_model.ninterfaces);
      Hashtbl.replace table node_id model)
    switches;
  (* Default model for every switch that routes traffic but was not given
     an explicit model. *)
  Array.iter
    (fun flow ->
      List.iter
        (fun node_id ->
          if not (Hashtbl.mem table node_id) then begin
            let degree = Network.Topology.degree topo node_id in
            Hashtbl.replace table node_id
              (Click.Switch_model.make ~ninterfaces:(max 1 degree) ())
          end)
        (Network.Route.intermediate_switches flow.Flow.route))
    flows;
  let nflows = Array.length flows in
  let by_id = Hashtbl.create (max 16 nflows) in
  Array.iter (fun f -> Hashtbl.replace by_id f.Flow.id f) flows;
  let on_link = Hashtbl.create (max 16 (4 * nflows)) in
  (* Flows are visited in id order; prepend then reverse keeps each per-hop
     list in id order too. *)
  Array.iter
    (fun f ->
      List.iter
        (fun hop ->
          let prev =
            match Hashtbl.find_opt on_link hop with Some l -> l | None -> []
          in
          Hashtbl.replace on_link hop (f :: prev))
        (Network.Route.hops f.Flow.route))
    flows;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) on_link;
  {
    topo;
    flows;
    switches = table;
    params_cache = Hashtbl.create 64;
    by_id;
    on_link;
    hep_cache = Hashtbl.create 64;
    lp_cache = Hashtbl.create 64;
    derived = Hashtbl.create 4;
  }

let cached t ~key compute =
  match Hashtbl.find_opt t.derived key with
  | Some v -> v
  | None ->
      let v = compute () in
      Hashtbl.replace t.derived key v;
      v

let topo t = t.topo
let flows t = Array.to_list t.flows
let flow_count t = Array.length t.flows

let flow t id =
  match Hashtbl.find_opt t.by_id id with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Scenario.flow: unknown id %d" id)

let switch_model t node_id =
  match Hashtbl.find_opt t.switches node_id with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Scenario.switch_model: node %d has no switch model"
           node_id)

let circ t node_id = Click.Switch_model.circ (switch_model t node_id)

let switch_nodes t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.switches []
  |> List.sort compare

let flows_on t ~src ~dst =
  match Hashtbl.find_opt t.on_link (src, dst) with
  | Some l -> l
  | None -> []

let hep t flow_i ~node =
  let key = (flow_i.Flow.id, node) in
  match Hashtbl.find_opt t.hep_cache key with
  | Some l -> l
  | None ->
      let succ = Network.Route.succ flow_i.Flow.route node in
      let l =
        flows_on t ~src:node ~dst:succ
        |> List.filter (fun j ->
               j.Flow.id <> flow_i.Flow.id
               && Flow.equal_priority_or_higher ~than:flow_i ~src:node
                    ~dst:succ j)
      in
      Hashtbl.replace t.hep_cache key l;
      l

let lp t flow_i ~node =
  let key = (flow_i.Flow.id, node) in
  match Hashtbl.find_opt t.lp_cache key with
  | Some l -> l
  | None ->
      let succ = Network.Route.succ flow_i.Flow.route node in
      let l =
        flows_on t ~src:node ~dst:succ
        |> List.filter (fun j ->
               j.Flow.id <> flow_i.Flow.id
               && not
                    (Flow.equal_priority_or_higher ~than:flow_i ~src:node
                       ~dst:succ j))
      in
      Hashtbl.replace t.lp_cache key l;
      l

let params t flow ~src ~dst =
  let key = (flow.Flow.id, src, dst) in
  match Hashtbl.find_opt t.params_cache key with
  | Some p -> p
  | None ->
      let link = Network.Topology.link_exn t.topo ~src ~dst in
      let p = Link_params.make ~flow ~link in
      Hashtbl.replace t.params_cache key p;
      p

let link_utilization t ~src ~dst =
  flows_on t ~src ~dst
  |> List.fold_left
       (fun acc f -> acc +. Link_params.utilization (params t f ~src ~dst))
       0.

let map_flows t ~f =
  let switches =
    Hashtbl.fold (fun id m acc -> (id, m) :: acc) t.switches []
  in
  make ~switches ~topo:t.topo ~flows:(List.map f (flows t)) ()

let pp fmt t =
  Format.fprintf fmt "@[<v>scenario: %d flows@," (Array.length t.flows);
  Array.iter (fun f -> Format.fprintf fmt "  %a@," Flow.pp f) t.flows;
  Network.Topology.pp fmt t.topo;
  Format.fprintf fmt "@]"
