(** A flow: GMF traffic specification + encapsulation + route + priority
    (paper Sections 2.1 and 2.3).

    Priorities are the IEEE 802.1p class of the flow's Ethernet frames:
    an integer where a {e larger} value means {e higher} priority (as in
    802.1p itself, where 7 outranks 0).  The analysis only compares
    priorities of flows sharing a link.

    The paper's priority function is per link — prio(tau_i, N1, N2) in
    eq (2) — because a network operator may remark the 802.1p class at any
    switch.  A flow therefore carries a default [priority] plus optional
    per-hop [remarks]. *)

type id = int

type t = private {
  id : id;
  name : string;
  spec : Gmf.Spec.t;
  encap : Ethernet.Encap.t;
  route : Network.Route.t;
  priority : int;
  remarks : ((Network.Node.id * Network.Node.id) * int) list;
      (** Per-hop 802.1p overrides, keyed by (link src, link dst). *)
}

val make_checked :
  id:id ->
  name:string ->
  spec:Gmf.Spec.t ->
  encap:Ethernet.Encap.t ->
  route:Network.Route.t ->
  priority:int ->
  (t, Gmf_diag.t) result
(** Builds a flow with no remarks (every hop uses [priority]).
    Returns [Error] with code [GMF010] if the priority is outside 0..7
    (the 802.1p code-point range).  Still raises [Invalid_argument] on
    [id < 0] — ids are assigned programmatically, a negative one is a
    caller bug, not a user input problem. *)

val make :
  id:id ->
  name:string ->
  spec:Gmf.Spec.t ->
  encap:Ethernet.Encap.t ->
  route:Network.Route.t ->
  priority:int ->
  t
(** Raising variant of {!make_checked}: raises [Invalid_argument] where
    it returns [Error]. *)

val with_remarks_checked :
  t ->
  ((Network.Node.id * Network.Node.id) * int) list ->
  (t, Gmf_diag.t) result
(** [with_remarks_checked flow remarks] installs per-hop 802.1p
    overrides.  Returns [Error] with code [GMF010] (priority outside
    0..7), [GMF011] (remark names a hop not on the route) or [GMF012]
    (hop remarked twice). *)

val with_remarks :
  t -> ((Network.Node.id * Network.Node.id) * int) list -> t
(** Raising variant of {!with_remarks_checked}. *)

val scale_payloads_checked : t -> float -> (t, Gmf_diag.t) result
(** [scale_payloads_checked flow factor] multiplies every frame's payload
    by [factor] (at least one bit each), keeping everything else — used
    by capacity-planning sweeps.  Returns [Error] with code [GMF013] if
    [factor <= 0]. *)

val scale_payloads : t -> float -> t
(** Raising variant of {!scale_payloads_checked}. *)

val priority_on :
  t -> src:Network.Node.id -> dst:Network.Node.id -> int
(** prio(tau, src, dst): the remark for that hop if present, otherwise the
    default priority. *)

val n : t -> int
(** Number of GMF frames in the flow's cycle. *)

val tsum : t -> Gmf_util.Timeunit.ns

val nbits : t -> int -> int
(** [nbits flow k] is the datagram size above IP of GMF frame [k mod n]
    (eq in Section 3.1: payload rounded to bytes + transport headers). *)

val nbits_all : t -> int array
(** [nbits] for every frame of the cycle. *)

val source : t -> Network.Node.id
val destination : t -> Network.Node.id

val equal_priority_or_higher :
  than:t -> src:Network.Node.id -> dst:Network.Node.id -> t -> bool
(** [equal_priority_or_higher ~than:i ~src ~dst j] is
    [prio(j, src, dst) >= prio(i, src, dst)] — the comparison inside the
    paper's hep set (eq 2), evaluated on the shared link. *)

val pp : Format.formatter -> t -> unit
