open Gmf_util

type category = Structural | Model | Utilization

let category_to_string = function
  | Structural -> "structural"
  | Model -> "model"
  | Utilization -> "utilization"

type rule = {
  code : string;
  category : category;
  default_severity : Gmf_diag.severity;
  title : string;
  reference : string;
}

let catalog =
  [
    {
      code = "GMF001";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "duplicate flow name";
      reference = "Section 2.3 (flows are identified by name in reports)";
    };
    {
      code = "GMF002";
      category = Structural;
      default_severity = Gmf_diag.Hint;
      title = "redundant 802.1p remark";
      reference = "eq (2): a remark equal to the default priority is a no-op";
    };
    {
      code = "GMF003";
      category = Structural;
      default_severity = Gmf_diag.Warning;
      title = "isolated node";
      reference = "Section 2.1 (every node should attach to the network)";
    };
    {
      code = "GMF004";
      category = Structural;
      default_severity = Gmf_diag.Hint;
      title = "link carries no flow";
      reference = "Section 3 (flows(N1,N2) is empty)";
    };
    {
      code = "GMF005";
      category = Structural;
      default_severity = Gmf_diag.Hint;
      title = "route longer than the shortest path";
      reference = "Section 2.1 (routes are pre-specified, detours are legal \
                   but add stages)";
    };
    {
      code = "GMF006";
      category = Structural;
      default_severity = Gmf_diag.Hint;
      title = "switch model on a switch no route crosses";
      reference = "Section 2.2 (CIRC only matters on relaying switches)";
    };
    {
      code = "GMF007";
      category = Structural;
      default_severity = Gmf_diag.Hint;
      title = "single point of failure: no alternate route";
      reference =
        "Section 2.1 (routes are pre-specified; a flow relayed through \
         switches with only one src/dst route cannot survive a link or \
         switch failure, see Gmf_faults.Survive)";
    };
    {
      code = "GMF010";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "priority outside the 802.1p range";
      reference = "Section 2.1 (802.1p code points are 0..7)";
    };
    {
      code = "GMF011";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "remark on a hop not on the route";
      reference = "eq (2): prio(tau,N1,N2) is defined on route links only";
    };
    {
      code = "GMF012";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "hop remarked twice";
      reference = "eq (2): one priority per flow per link";
    };
    {
      code = "GMF013";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "non-positive payload scale factor";
      reference = "Section 2.3 (payloads are positive)";
    };
    {
      code = "GMF014";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "candidate flow id already admitted";
      reference =
        "Section 3.5 (admission control: produced by Analysis.Admission \
         and Gmf_admctl sessions, not by scenario_rules)";
    };
    {
      code = "GMF015";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "remove/update of a flow id the session does not hold";
      reference =
        "Section 3.5 (admission control: produced by Gmf_admctl sessions, \
         not by scenario_rules)";
    };
    {
      code = "GMF016";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "fault event error (failed-link routing, unknown or \
               duplicate fail/restore)";
      reference =
        "Section 3.5 (degraded-mode sessions: produced by Gmf_admctl \
         fail/restore handling, not by scenario_rules)";
    };
    {
      code = "GMF017";
      category = Structural;
      default_severity = Gmf_diag.Error;
      title = "candidate not k-failure survivable (must-shed verdict)";
      reference =
        "Section 3.5 (produced by the survivable-admission gate — \
         Gmf_faults.Survive.admission_gate — not by scenario_rules)";
    };
    {
      code = "GMF018";
      category = Utilization;
      default_severity = Gmf_diag.Error;
      title = "flow statically infeasible (precheck certificate)";
      reference =
        "eqs (20)/(34)-(35) and the one-shot demand floor (produced by \
         Gmf_precheck.Precheck, not by scenario_rules)";
    };
    {
      code = "GMF019";
      category = Utilization;
      default_severity = Gmf_diag.Warning;
      title = "interference component larger than the configured bound";
      reference =
        "Section 3.5 (fixpoint cost grows with the interference \
         component; produced by Gmf_precheck.Precheck, not by \
         scenario_rules)";
    };
    {
      code = "GMF101";
      category = Model;
      default_severity = Gmf_diag.Hint;
      title = "frame deadline exceeds its period";
      reference = "Section 2.3 (D > T is legal but admits cross-cycle \
                   backlog; the analysis walks Q instances)";
    };
    {
      code = "GMF102";
      category = Model;
      default_severity = Gmf_diag.Warning;
      title = "source jitter at least the frame period";
      reference = "eqs (21)-(35) charge interference per jitter window; \
                   GJ >= T makes bursts of back-to-back cycles possible";
    };
    {
      code = "GMF103";
      category = Model;
      default_severity = Gmf_diag.Hint;
      title = "payload fragments into several Ethernet frames";
      reference = "Section 3.1 / DESIGN.md R2-R3: fragmentation is where \
                   the Faithful variant under-charges rotations";
    };
    {
      code = "GMF104";
      category = Model;
      default_severity = Gmf_diag.Hint;
      title = "equal 802.1p priority on a shared link";
      reference = "eq (2): hep() counts priority ties as interference both \
                   ways; bounds for tied flows are mutually pessimistic";
    };
    {
      code = "GMF105";
      category = Model;
      default_severity = Gmf_diag.Hint;
      title = "switch model has more interfaces than links";
      reference = "Section 2.2: CIRC(N) grows with NINTERFACES(N); unused \
                   ports still cost a rotation slot";
    };
    {
      code = "GMF201";
      category = Utilization;
      default_severity = Gmf_diag.Error;
      title = "link utilization at least 1";
      reference = "eq (20): sum of CSUM/TSUM over flows(N1,N2) must stay \
                   below 1";
    };
    {
      code = "GMF202";
      category = Utilization;
      default_severity = Gmf_diag.Error;
      title = "deadline below the uncontended response time";
      reference = "Figure 6: RSUM starts at GJ and adds at least each \
                   stage's own transmission/rotation time";
    };
    {
      code = "GMF203";
      category = Utilization;
      default_severity = Gmf_diag.Error;
      title = "ingress task rotation overload";
      reference = "eqs (34)-(35): sum of NSUM*CIRC/TSUM over an ingress \
                   link must stay below 1";
    };
    {
      code = "GMF204";
      category = Utilization;
      default_severity = Gmf_diag.Hint;
      title = "link near saturation";
      reference = "eq (20): utilization in [0.9, 1) converges but busy \
                   periods grow sharply";
    };
    {
      code = "GMF205";
      category = Utilization;
      default_severity = Gmf_diag.Warning;
      title = "analysis horizon below a frame deadline";
      reference = "Config.horizon treats longer busy periods as divergence; \
                   a horizon under max D cannot prove schedulability";
    };
    {
      code = "GMF206";
      category = Utilization;
      default_severity = Gmf_diag.Error;
      title = "non-positive analysis iteration cap";
      reference = "Section 3.5: the fixed points need at least one \
                   iteration and one holistic round";
    };
  ]

let find code = List.find_opt (fun r -> r.code = code) catalog

(* ---------------- shared helpers ---------------- *)

let flow_subject (f : Traffic.Flow.t) =
  Gmf_diag.Flow { id = f.Traffic.Flow.id; name = f.Traffic.Flow.name }

let frame_subject (f : Traffic.Flow.t) k =
  Gmf_diag.Frame { id = f.Traffic.Flow.id; name = f.Traffic.Flow.name; frame = k }

let node_subject topo id =
  Gmf_diag.Node { id; name = (Network.Topology.node topo id).Network.Node.name }

(* Directed links actually crossed by some flow's route. *)
let used_links scenario =
  let used = Hashtbl.create 16 in
  List.iter
    (fun (f : Traffic.Flow.t) ->
      List.iter
        (fun hop -> Hashtbl.replace used hop ())
        (Network.Route.hops f.Traffic.Flow.route))
    (Traffic.Scenario.flows scenario);
  used

(* Left side of eqs (34)-(35) for one ingress link (src -> switch): every
   Ethernet frame entering the switch there costs one CIRC rotation. *)
let ingress_utilization = Gmf_precheck.Static_tests.ingress_utilization

(* GJ + uncontended per-stage response lower bounds; the formula lives
   in Gmf_precheck.Static_tests (single home of the static inequalities). *)
let min_response = Gmf_precheck.Static_tests.min_response

(* ---------------- GMF0xx: structural ---------------- *)

let check_duplicate_names scenario =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (f : Traffic.Flow.t) ->
      match Hashtbl.find_opt seen f.Traffic.Flow.name with
      | Some first ->
          Some
            (Gmf_diag.error ~code:"GMF001" ~subject:(flow_subject f)
               ~suggestion:"give every flow a distinct name"
               "flow name %S already used by flow %d" f.Traffic.Flow.name
               first)
      | None ->
          Hashtbl.add seen f.Traffic.Flow.name f.Traffic.Flow.id;
          None)
    (Traffic.Scenario.flows scenario)

let check_redundant_remarks scenario =
  List.concat_map
    (fun (f : Traffic.Flow.t) ->
      List.filter_map
        (fun ((src, dst), p) ->
          if p = f.Traffic.Flow.priority then
            Some
              (Gmf_diag.hint ~code:"GMF002" ~subject:(flow_subject f)
                 ~suggestion:"drop the remark; the default already applies"
                 "remark on hop %d->%d repeats the default priority %d" src
                 dst p)
          else None)
        f.Traffic.Flow.remarks)
    (Traffic.Scenario.flows scenario)

let check_isolated_nodes scenario =
  let topo = Traffic.Scenario.topo scenario in
  let attached = Hashtbl.create 16 in
  List.iter
    (fun (l : Network.Link.t) ->
      Hashtbl.replace attached l.Network.Link.src ();
      Hashtbl.replace attached l.Network.Link.dst ())
    (Network.Topology.links topo);
  List.filter_map
    (fun (n : Network.Node.t) ->
      if Hashtbl.mem attached n.Network.Node.id then None
      else
        Some
          (Gmf_diag.warning ~code:"GMF003"
             ~subject:(node_subject topo n.Network.Node.id)
             ~suggestion:"add a link or remove the node"
             "node has no links"))
    (Network.Topology.nodes topo)

let check_unused_links scenario =
  let topo = Traffic.Scenario.topo scenario in
  let used = used_links scenario in
  List.filter_map
    (fun (l : Network.Link.t) ->
      let src = l.Network.Link.src and dst = l.Network.Link.dst in
      if Hashtbl.mem used (src, dst) then None
      else
        Some
          (Gmf_diag.hint ~code:"GMF004"
             ~subject:(Gmf_diag.Link { src; dst })
             ~suggestion:"no flow routes over this direction"
             "link carries no flow"))
    (Network.Topology.links topo)

let check_detour_routes scenario =
  let topo = Traffic.Scenario.topo scenario in
  List.filter_map
    (fun (f : Traffic.Flow.t) ->
      let route = f.Traffic.Flow.route in
      let src = Network.Route.source route
      and dst = Network.Route.destination route in
      match Network.Topology.shortest_path topo ~src ~dst with
      | Some path
        when List.length path - 1 < Network.Route.hop_count route ->
          Some
            (Gmf_diag.hint ~code:"GMF005" ~subject:(flow_subject f)
               ~suggestion:
                 (Printf.sprintf "a %d-hop path exists"
                    (List.length path - 1))
               "route takes %d hops where %d suffice"
               (Network.Route.hop_count route)
               (List.length path - 1))
      | _ -> None)
    (Traffic.Scenario.flows scenario)

let check_unused_switches scenario =
  let topo = Traffic.Scenario.topo scenario in
  let crossed = Hashtbl.create 8 in
  List.iter
    (fun (f : Traffic.Flow.t) ->
      List.iter
        (fun node -> Hashtbl.replace crossed node ())
        (Network.Route.intermediate_switches f.Traffic.Flow.route))
    (Traffic.Scenario.flows scenario);
  List.filter_map
    (fun node ->
      if Hashtbl.mem crossed node then None
      else
        Some
          (Gmf_diag.hint ~code:"GMF006" ~subject:(node_subject topo node)
             ~suggestion:"no route relays through this switch"
             "switch model is never exercised"))
    (Traffic.Scenario.switch_nodes scenario)

(* Only flows relayed through at least one switch are probed: a direct
   host-to-host wire is trivially its only route, and flagging it would
   drown every two-node scenario in hints. *)
let check_single_route scenario =
  let topo = Traffic.Scenario.topo scenario in
  (* Existence, not enumeration: redundancy only needs "is there a second
     route?", and flows sharing endpoints share the answer. *)
  let redundant = Hashtbl.create 16 in
  let has_second src dst =
    match Hashtbl.find_opt redundant (src, dst) with
    | Some b -> b
    | None ->
        let b = Network.Pathfind.has_at_least topo ~src ~dst 2 in
        Hashtbl.replace redundant (src, dst) b;
        b
  in
  List.filter_map
    (fun (f : Traffic.Flow.t) ->
      let route = f.Traffic.Flow.route in
      if Network.Route.intermediate_switches route = [] then None
      else
        let src = Network.Route.source route
        and dst = Network.Route.destination route in
        match has_second src dst with
        | false ->
            let name id = (Network.Topology.node topo id).Network.Node.name in
            Some
              (Gmf_diag.hint ~code:"GMF007" ~subject:(flow_subject f)
                 ~suggestion:
                   "add a redundant link so the flow can survive a failure \
                    (gmfnet survive enumerates the cases)"
                 "single point of failure: only one route from %s to %s"
                 (name src) (name dst))
        | _ -> None)
    (Traffic.Scenario.flows scenario)

(* ---------------- GMF1xx: model preconditions ---------------- *)

let check_deadline_vs_period scenario =
  List.concat_map
    (fun (f : Traffic.Flow.t) ->
      let spec = f.Traffic.Flow.spec in
      List.filter_map
        (fun k ->
          let fr = Gmf.Spec.frame spec k in
          if fr.Gmf.Frame_spec.deadline > fr.Gmf.Frame_spec.period then
            Some
              (Gmf_diag.hint ~code:"GMF101" ~subject:(frame_subject f k)
                 ~suggestion:
                   "legal, but consecutive cycles may overlap in the network"
                 "deadline %s exceeds period %s"
                 (Timeunit.to_string fr.Gmf.Frame_spec.deadline)
                 (Timeunit.to_string fr.Gmf.Frame_spec.period))
          else None)
        (List.init (Gmf.Spec.n spec) Fun.id))
    (Traffic.Scenario.flows scenario)

let check_jitter_vs_period scenario =
  List.concat_map
    (fun (f : Traffic.Flow.t) ->
      let spec = f.Traffic.Flow.spec in
      List.filter_map
        (fun k ->
          let fr = Gmf.Spec.frame spec k in
          if
            fr.Gmf.Frame_spec.period > 0
            && fr.Gmf.Frame_spec.jitter >= fr.Gmf.Frame_spec.period
          then
            Some
              (Gmf_diag.warning ~code:"GMF102" ~subject:(frame_subject f k)
                 ~suggestion:
                   "bursts of back-to-back releases inflate every bound"
                 "source jitter %s is at least the period %s"
                 (Timeunit.to_string fr.Gmf.Frame_spec.jitter)
                 (Timeunit.to_string fr.Gmf.Frame_spec.period))
          else None)
        (List.init (Gmf.Spec.n spec) Fun.id))
    (Traffic.Scenario.flows scenario)

let check_fragmentation ~(config : Analysis_config.t) scenario =
  List.concat_map
    (fun (f : Traffic.Flow.t) ->
      List.filter_map
        (fun k ->
          let nbits = Traffic.Flow.nbits f k in
          let frags = Ethernet.Fragment.fragment_count ~nbits in
          if frags > 1 then
            let build =
              match config.Analysis_config.variant with
              | Analysis_config.Faithful ->
                  Gmf_diag.warning
                    ~suggestion:
                      "the faithful variant under-charges rotations for \
                       fragmented frames; prefer --variant repaired"
              | Analysis_config.Repaired ->
                  Gmf_diag.hint
                    ~suggestion:"each fragment costs a CIRC rotation"
            in
            Some
              (build ~code:"GMF103" ~subject:(frame_subject f k)
                 "datagram of %d bits fragments into %d Ethernet frames"
                 nbits frags)
          else None)
        (List.init (Traffic.Flow.n f) Fun.id))
    (Traffic.Scenario.flows scenario)

let check_priority_ties scenario =
  let used = used_links scenario in
  Hashtbl.fold
    (fun (src, dst) () acc ->
      let flows = Traffic.Scenario.flows_on scenario ~src ~dst in
      let by_prio = Hashtbl.create 8 in
      List.iter
        (fun (f : Traffic.Flow.t) ->
          let p = Traffic.Flow.priority_on f ~src ~dst in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt by_prio p)
          in
          Hashtbl.replace by_prio p (f :: prev))
        flows;
      Hashtbl.fold
        (fun p group acc ->
          if List.length group >= 2 then
            Gmf_diag.hint ~code:"GMF104"
              ~subject:(Gmf_diag.Link { src; dst })
              ~suggestion:
                "hep() counts ties as interference both ways; distinct \
                 priorities tighten both bounds"
              "%d flows share priority %d on this link"
              (List.length group) p
            :: acc
          else acc)
        by_prio acc)
    used []

let check_overprovisioned_switches scenario =
  let topo = Traffic.Scenario.topo scenario in
  List.filter_map
    (fun node ->
      let model = Traffic.Scenario.switch_model scenario node in
      let degree = Network.Topology.degree topo node in
      if model.Click.Switch_model.ninterfaces > degree then
        Some
          (Gmf_diag.hint ~code:"GMF105" ~subject:(node_subject topo node)
             ~suggestion:
               (Printf.sprintf
                  "unused ports still cost rotation slots; CIRC is %s"
                  (Timeunit.to_string (Click.Switch_model.circ model)))
             "model has %d interfaces but the node has %d links"
             model.Click.Switch_model.ninterfaces degree)
      else None)
    (Traffic.Scenario.switch_nodes scenario)

(* ---------------- GMF2xx: utilization / config ---------------- *)

let check_link_utilization scenario =
  let used = used_links scenario in
  Hashtbl.fold
    (fun (src, dst) () acc ->
      let u = Gmf_precheck.Static_tests.link_utilization scenario ~src ~dst in
      if u >= 1. then
        Gmf_diag.error ~code:"GMF201"
          ~subject:(Gmf_diag.Link { src; dst })
          ~suggestion:"shed flows or raise the link rate"
          "utilization %.3f violates the necessary condition of eq (20)" u
        :: acc
      else if u >= 0.9 then
        Gmf_diag.hint ~code:"GMF204"
          ~subject:(Gmf_diag.Link { src; dst })
          ~suggestion:"busy periods grow sharply near saturation"
          "utilization %.3f is within 10%% of saturation" u
        :: acc
      else acc)
    used []

let check_ingress_utilization scenario =
  let crossed = Hashtbl.create 8 in
  List.iter
    (fun (f : Traffic.Flow.t) ->
      let route = f.Traffic.Flow.route in
      List.iter
        (fun node ->
          Hashtbl.replace crossed (Network.Route.prec route node, node) ())
        (Network.Route.intermediate_switches route))
    (Traffic.Scenario.flows scenario);
  let topo = Traffic.Scenario.topo scenario in
  Hashtbl.fold
    (fun (src, node) () acc ->
      let u = ingress_utilization scenario ~src ~node in
      if u >= 1. then
        Gmf_diag.error ~code:"GMF203" ~subject:(node_subject topo node)
          ~suggestion:
            (Printf.sprintf
               "frames entering via link %d->%d alone oversubscribe the \
                rotation; fewer frames or more processors"
               src node)
          "ingress rotation utilization %.3f on link %d->%d violates eqs \
           (34)-(35)"
          u src node
        :: acc
      else acc)
    crossed []

let check_impossible_deadlines scenario =
  List.concat_map
    (fun (f : Traffic.Flow.t) ->
      List.filter_map
        (fun k ->
          let d =
            (Gmf.Spec.frame f.Traffic.Flow.spec k).Gmf.Frame_spec.deadline
          in
          let floor = min_response scenario f ~frame:k in
          if floor > d then
            Some
              (Gmf_diag.error ~code:"GMF202" ~subject:(frame_subject f k)
                 ~suggestion:
                   "even an uncontended packet misses; relax the deadline \
                    or shorten the route"
                 "jitter plus uncontended stage responses total %s, above \
                  the deadline %s"
                 (Timeunit.to_string floor) (Timeunit.to_string d))
          else None)
        (List.init (Traffic.Flow.n f) Fun.id))
    (Traffic.Scenario.flows scenario)

let check_config ~(config : Analysis_config.t) scenario =
  let caps =
    List.filter_map
      (fun (name, v) ->
        if v <= 0 then
          Some
            (Gmf_diag.error ~code:"GMF206" ~subject:Gmf_diag.Config
               ~suggestion:"every cap must be positive"
               "%s = %d leaves the analysis no iterations" name v)
        else None)
      [
        ("max_busy_iters", config.Analysis_config.max_busy_iters);
        ("max_q", config.Analysis_config.max_q);
        ("max_holistic_rounds", config.Analysis_config.max_holistic_rounds);
        ("horizon", config.Analysis_config.horizon);
      ]
  in
  let max_deadline =
    List.fold_left
      (fun acc (f : Traffic.Flow.t) ->
        Array.fold_left max acc (Gmf.Spec.deadlines f.Traffic.Flow.spec))
      0
      (Traffic.Scenario.flows scenario)
  in
  let horizon =
    if
      config.Analysis_config.horizon > 0
      && config.Analysis_config.horizon < max_deadline
    then
      [
        Gmf_diag.warning ~code:"GMF205" ~subject:Gmf_diag.Config
          ~suggestion:"raise --horizon above the largest deadline"
          "horizon %s is below the largest frame deadline %s; verdicts \
           degrade to divergence"
          (Timeunit.to_string config.Analysis_config.horizon)
          (Timeunit.to_string max_deadline);
      ]
    else []
  in
  caps @ horizon

(* ---------------- entry points ---------------- *)

let by_code_then_message (a : Gmf_diag.t) (b : Gmf_diag.t) =
  match compare a.Gmf_diag.code b.Gmf_diag.code with
  | 0 -> compare a.Gmf_diag.message b.Gmf_diag.message
  | c -> c

let scenario_rules ?(config = Analysis_config.default) scenario =
  List.sort by_code_then_message
    (List.concat
       [
         check_duplicate_names scenario;
         check_redundant_remarks scenario;
         check_isolated_nodes scenario;
         check_unused_links scenario;
         check_detour_routes scenario;
         check_unused_switches scenario;
         check_single_route scenario;
         check_deadline_vs_period scenario;
         check_jitter_vs_period scenario;
         check_fragmentation ~config scenario;
         check_priority_ties scenario;
         check_overprovisioned_switches scenario;
         check_link_utilization scenario;
         check_ingress_utilization scenario;
         check_impossible_deadlines scenario;
         check_config ~config scenario;
       ])

let flow_gate scenario (f : Traffic.Flow.t) =
  let route = f.Traffic.Flow.route in
  let links =
    List.filter_map
      (fun (src, dst) ->
        let u =
          Gmf_precheck.Static_tests.link_utilization scenario ~src ~dst
        in
        if u >= 1. then
          Some
            (Gmf_diag.error ~code:"GMF201"
               ~subject:(Gmf_diag.Link { src; dst })
               ~suggestion:"shed flows or raise the link rate"
               "utilization %.3f violates the necessary condition of eq \
                (20)"
               u)
        else None)
      (Network.Route.hops route)
  in
  let ingresses =
    List.filter_map
      (fun node ->
        let src = Network.Route.prec route node in
        let u = ingress_utilization scenario ~src ~node in
        if u >= 1. then
          Some
            (Gmf_diag.error ~code:"GMF203"
               ~subject:
                 (node_subject (Traffic.Scenario.topo scenario) node)
               ~suggestion:"fewer frames or more processors"
               "ingress rotation utilization %.3f on link %d->%d violates \
                eqs (34)-(35)"
               u src node)
        else None)
      (Network.Route.intermediate_switches route)
  in
  List.sort by_code_then_message (links @ ingresses)
