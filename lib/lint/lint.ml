type report = { diagnostics : Gmf_diag.t list }

let runs = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "lint.runs"

(* Counters are interned by name, so re-registering per run is cheap and
   keeps rule implementations free of metrics plumbing. *)
let hit d =
  Gmf_obs.Metrics.incr
    (Gmf_obs.Metrics.counter Gmf_obs.Metrics.default
       ("lint.hits." ^ d.Gmf_diag.code))

let run ?config scenario =
  Gmf_obs.Metrics.incr runs;
  let diagnostics = Rules.scenario_rules ?config scenario in
  List.iter hit diagnostics;
  { diagnostics }

let errors r = Gmf_diag.by_severity Gmf_diag.Error r.diagnostics
let warnings r = Gmf_diag.by_severity Gmf_diag.Warning r.diagnostics
let hints r = Gmf_diag.by_severity Gmf_diag.Hint r.diagnostics
let fatal ~deny r = Gmf_diag.at_least deny r.diagnostics <> []
let pp_report fmt r = Gmf_diag.pp_list fmt r.diagnostics
