(** The rule catalog and the rule implementations of the lint pass.

    Codes are stable and grouped by family:
    - [GMF0xx] — structural problems in the scenario/topology (duplicate
      names, isolated nodes, unused links, detour routes) and the input
      codes raised by checked constructors ([GMF010]–[GMF013]);
    - [GMF1xx] — model preconditions of the paper (deadline vs. period,
      jitter assumptions, fragmentation, 802.1p collisions, CIRC
      feasibility);
    - [GMF2xx] — performance/utilization (necessary conditions eq (20) and
      eqs (34)–(35), impossible deadlines, config sanity). *)

type category = Structural | Model | Utilization

val category_to_string : category -> string

type rule = {
  code : string;
  category : category;
  default_severity : Gmf_diag.severity;
  title : string;
  reference : string;
      (** Paper equation / section or DESIGN.md repair backing the rule. *)
}

val catalog : rule list
(** Every code the tree can emit, ascending; includes the constructor
    codes [GMF010]–[GMF013] that are produced by [Traffic.Flow] rather
    than by {!scenario_rules}. *)

val find : string -> rule option

val scenario_rules :
  ?config:Analysis_config.t -> Traffic.Scenario.t -> Gmf_diag.t list
(** Run every static rule over the scenario (and the analysis config,
    defaulting to {!Analysis_config.default}).  Pure: no fixpoint is
    executed, no metrics are recorded (that is {!Lint.run}'s job). *)

val flow_gate : Traffic.Scenario.t -> Traffic.Flow.t -> Gmf_diag.t list
(** The cheap per-flow pre-pass used by [Analysis.Pipeline]: only the
    utilization impossibility rules ([GMF201], [GMF203]) restricted to
    the links the flow's route crosses — conditions under which the
    busy-period recurrences provably diverge.  Returns errors only. *)
