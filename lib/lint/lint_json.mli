(** JSON-lines encoding of diagnostics for [gmfnet lint --json].

    One flat object per line:
    [{"code":"GMF201","severity":"error","subject":"link 0->1",
      "message":"...","suggestion":"..."}]
    plus structured subject fields ([subject_kind], and the ids the kind
    carries) so downstream tooling does not have to re-parse the display
    string.  The parser is the round-trip inverse, in the same
    hand-rolled style as [Gmf_obs.Export] — no JSON library in the
    dependency cone. *)

val to_jsonl : Gmf_diag.t list -> string
(** One diagnostic per line, trailing newline included (empty string for
    no diagnostics). *)

val of_jsonl_line : string -> (Gmf_diag.t, string) result
(** Parse one line back.  [Error] describes the first malformation. *)

val of_jsonl : string -> (Gmf_diag.t list, string) result
(** Parse a whole [to_jsonl] output (blank lines skipped). *)
