(** The lint pass: run every rule, record hit-rate metrics, classify.

    [run] is the entry point the CLI, [Analysis.Admission] and tests use.
    It never executes a fixpoint — every rule in {!Rules} is a pure
    traversal of the scenario/topology/config — so gating an analysis on
    it costs O(flows × route length). *)

type report = { diagnostics : Gmf_diag.t list  (** Sorted by code. *) }

val run : ?config:Analysis_config.t -> Traffic.Scenario.t -> report
(** Run {!Rules.scenario_rules} and bump the per-rule
    [lint.hits.<CODE>] counters plus [lint.runs] on
    {!Gmf_obs.Metrics.default} (visible under [gmfnet profile]). *)

val errors : report -> Gmf_diag.t list
val warnings : report -> Gmf_diag.t list
val hints : report -> Gmf_diag.t list

val fatal : deny:Gmf_diag.severity -> report -> bool
(** [fatal ~deny report] is true when any diagnostic sits at or above
    the deny level — the CLI's [--deny] exit policy. *)

val pp_report : Format.formatter -> report -> unit
