(* Hand-rolled flat JSON, mirroring [Gmf_obs.Export] (which keeps its
   parser private): string and integer values only, one object per line. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let subject_fields = function
  | Gmf_diag.Scenario -> [ ("subject_kind", `S "scenario") ]
  | Gmf_diag.Config -> [ ("subject_kind", `S "config") ]
  | Gmf_diag.Flow { id; name } ->
      [ ("subject_kind", `S "flow"); ("id", `I id); ("name", `S name) ]
  | Gmf_diag.Frame { id; name; frame } ->
      [
        ("subject_kind", `S "frame"); ("id", `I id); ("name", `S name);
        ("frame", `I frame);
      ]
  | Gmf_diag.Node { id; name } ->
      [ ("subject_kind", `S "node"); ("id", `I id); ("name", `S name) ]
  | Gmf_diag.Link { src; dst } ->
      [ ("subject_kind", `S "link"); ("src", `I src); ("dst", `I dst) ]

let to_jsonl_line (d : Gmf_diag.t) =
  let fields =
    [
      ("code", `S d.Gmf_diag.code);
      ("severity", `S (Gmf_diag.severity_to_string d.Gmf_diag.severity));
    ]
    @ subject_fields d.Gmf_diag.subject
    @ [ ("message", `S d.Gmf_diag.message) ]
    @
    match d.Gmf_diag.suggestion with
    | None -> []
    | Some s -> [ ("suggestion", `S s) ]
  in
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           match v with
           | `S s -> Printf.sprintf "\"%s\":\"%s\"" k (json_escape s)
           | `I i -> Printf.sprintf "\"%s\":%d" k i)
         fields)
  ^ "}"

let to_jsonl ds =
  String.concat "" (List.map (fun d -> to_jsonl_line d ^ "\n") ds)

type json_field = Fstr of string | Fint of int

exception Parse_error of string

let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      Stdlib.incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then Stdlib.incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match line.[!pos] with
        | '"' -> Stdlib.incr pos
        | '\\' ->
            if !pos + 1 >= n then fail "dangling escape";
            (match line.[!pos + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'u' ->
                if !pos + 5 >= n then fail "truncated \\u escape";
                let code =
                  try int_of_string ("0x" ^ String.sub line (!pos + 2) 4)
                  with _ -> fail "bad \\u escape"
                in
                if code > 0xff then fail "non-latin \\u escape"
                else Buffer.add_char buf (Char.chr code);
                pos := !pos + 4
            | c -> fail (Printf.sprintf "unknown escape '\\%c'" c));
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            Stdlib.incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then Stdlib.incr pos;
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      Stdlib.incr pos
    done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then Stdlib.incr pos
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let value =
        if peek () = Some '"' then Fstr (parse_string ())
        else Fint (parse_int ())
      in
      fields := (key, value) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
          Stdlib.incr pos;
          members ()
      | Some '}' -> Stdlib.incr pos
      | _ -> fail "expected ',' or '}'"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let of_jsonl_line line =
  match parse_flat_object line with
  | exception Parse_error msg -> Error msg
  | fields -> (
      let str key =
        match List.assoc_opt key fields with
        | Some (Fstr s) -> Ok s
        | Some (Fint _) ->
            Error (Printf.sprintf "field %S: expected string" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let int key =
        match List.assoc_opt key fields with
        | Some (Fint i) -> Ok i
        | Some (Fstr _) ->
            Error (Printf.sprintf "field %S: expected integer" key)
        | None -> Error (Printf.sprintf "missing field %S" key)
      in
      let ( let* ) = Result.bind in
      let* code = str "code" in
      let* sev_name = str "severity" in
      let* severity =
        match Gmf_diag.severity_of_string sev_name with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "unknown severity %S" sev_name)
      in
      let* kind = str "subject_kind" in
      let* subject =
        match kind with
        | "scenario" -> Ok Gmf_diag.Scenario
        | "config" -> Ok Gmf_diag.Config
        | "flow" ->
            let* id = int "id" in
            let* name = str "name" in
            Ok (Gmf_diag.Flow { id; name })
        | "frame" ->
            let* id = int "id" in
            let* name = str "name" in
            let* frame = int "frame" in
            Ok (Gmf_diag.Frame { id; name; frame })
        | "node" ->
            let* id = int "id" in
            let* name = str "name" in
            Ok (Gmf_diag.Node { id; name })
        | "link" ->
            let* src = int "src" in
            let* dst = int "dst" in
            Ok (Gmf_diag.Link { src; dst })
        | k -> Error (Printf.sprintf "unknown subject_kind %S" k)
      in
      let* message = str "message" in
      let suggestion =
        match List.assoc_opt "suggestion" fields with
        | Some (Fstr s) -> Some s
        | _ -> None
      in
      Ok { Gmf_diag.code; severity; subject; message; suggestion })

let of_jsonl text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match of_jsonl_line l with
        | Ok d -> go (d :: acc) rest
        | Error e -> Error e)
  in
  go [] lines
