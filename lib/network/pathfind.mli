(** Route enumeration beyond the single shortest path.

    The paper takes each flow's route as pre-specified; an operator still
    has to pick it.  This module enumerates candidate routes (loop-free,
    switch-only interiors, as {!Route} requires) so admission control can
    try alternatives when the default path is saturated. *)

val all_routes :
  ?max_hops:int ->
  ?avoid_links:(Node.id * Node.id) list ->
  ?avoid_nodes:Node.id list ->
  Topology.t ->
  src:Node.id ->
  dst:Node.id ->
  Route.t list
(** Every valid route from [src] to [dst] with at most [max_hops] links
    (default 8), ordered by hop count then lexicographically by node
    sequence.  Exhaustive DFS — intended for the small edge topologies this
    library targets.  Empty if the endpoints cannot terminate flows or are
    unreachable.

    [avoid_links] (directed [(src, dst)] pairs) and [avoid_nodes] exclude
    failed components: no returned route crosses an avoided link or visits
    an avoided node (a route whose endpoint is avoided does not exist).
    Both default to empty. *)

val k_shortest :
  ?max_hops:int ->
  ?avoid_links:(Node.id * Node.id) list ->
  ?avoid_nodes:Node.id list ->
  ?k:int -> Topology.t -> src:Node.id -> dst:Node.id ->
  Route.t list
(** The first [k] (default 4) routes of {!all_routes}. *)

val has_at_least :
  ?max_hops:int ->
  ?avoid_links:(Node.id * Node.id) list ->
  ?avoid_nodes:Node.id list ->
  Topology.t ->
  src:Node.id ->
  dst:Node.id ->
  int ->
  bool
(** [has_at_least topo ~src ~dst n]: does {!all_routes} hold at least [n]
    routes?  Early-exits as soon as the [n]th route is found, so existence
    checks (e.g. redundancy lints) stay cheap on dense topologies where
    full enumeration would explode. *)

val route_capacity : Topology.t -> Route.t -> int
(** The smallest link rate along the route (bits/s) — a quick filter for
    candidate ordering. *)

(** Per-topology route cache for callers that enumerate many candidate
    routes on one (immutable) topology — flow-set generation, rerouting
    sweeps.  Caches the reverse-BFS distance table per destination (it
    also prunes the enumeration DFS) and the full route list per
    [(src, dst, max_hops, avoids)] query.  The topology must not gain
    nodes or links while a cache built on it is in use. *)
module Cache : sig
  type t

  val create : Topology.t -> t

  val all_routes :
    ?max_hops:int ->
    ?avoid_links:(Node.id * Node.id) list ->
    ?avoid_nodes:Node.id list ->
    t ->
    src:Node.id ->
    dst:Node.id ->
    Route.t list
  (** Same result as the top-level {!all_routes}, memoized. *)

  val k_shortest :
    ?max_hops:int ->
    ?avoid_links:(Node.id * Node.id) list ->
    ?avoid_nodes:Node.id list ->
    ?k:int ->
    t ->
    src:Node.id ->
    dst:Node.id ->
    Route.t list
  (** The first [k] (default 4) routes of {!all_routes}. *)

  val shortest_len : t -> src:Node.id -> dst:Node.id -> int option
  (** Links on a shortest valid route ([None] if unreachable), straight
    from the cached distance table — no enumeration. *)

  val hits : t -> int
  val misses : t -> int
  (** Route-list memo hits/misses since {!create}. *)
end
