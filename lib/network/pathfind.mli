(** Route enumeration beyond the single shortest path.

    The paper takes each flow's route as pre-specified; an operator still
    has to pick it.  This module enumerates candidate routes (loop-free,
    switch-only interiors, as {!Route} requires) so admission control can
    try alternatives when the default path is saturated. *)

val all_routes :
  ?max_hops:int ->
  ?avoid_links:(Node.id * Node.id) list ->
  ?avoid_nodes:Node.id list ->
  Topology.t ->
  src:Node.id ->
  dst:Node.id ->
  Route.t list
(** Every valid route from [src] to [dst] with at most [max_hops] links
    (default 8), ordered by hop count then lexicographically by node
    sequence.  Exhaustive DFS — intended for the small edge topologies this
    library targets.  Empty if the endpoints cannot terminate flows or are
    unreachable.

    [avoid_links] (directed [(src, dst)] pairs) and [avoid_nodes] exclude
    failed components: no returned route crosses an avoided link or visits
    an avoided node (a route whose endpoint is avoided does not exist).
    Both default to empty. *)

val k_shortest :
  ?max_hops:int ->
  ?avoid_links:(Node.id * Node.id) list ->
  ?avoid_nodes:Node.id list ->
  ?k:int -> Topology.t -> src:Node.id -> dst:Node.id ->
  Route.t list
(** The first [k] (default 4) routes of {!all_routes}. *)

val route_capacity : Topology.t -> Route.t -> int
(** The smallest link rate along the route (bits/s) — a quick filter for
    candidate ordering. *)
