(* Lower bound on the number of links still needed to reach [dst] from
   every node: reverse BFS from [dst], expanding only through switches
   (routes cannot relay through endhosts or routers).  Computed on the
   full topology — avoid sets only remove edges, so the bound stays
   admissible and one table serves every avoid combination. *)
let dist_to_dst topo ~dst =
  let n = Topology.node_count topo in
  let dist = Array.make n max_int in
  let in_neighbors = Array.make n [] in
  List.iter
    (fun (l : Link.t) ->
      in_neighbors.(l.dst) <- l.src :: in_neighbors.(l.dst))
    (Topology.links topo);
  let q = Queue.create () in
  dist.(dst) <- 0;
  Queue.add dst q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let d = dist.(v) in
    List.iter
      (fun u ->
        if dist.(u) = max_int then begin
          dist.(u) <- d + 1;
          if Node.is_switch (Topology.node topo u) then Queue.add u q
        end)
      in_neighbors.(v)
  done;
  dist

let all_routes_with ~dist ?(max_hops = 8) ?(avoid_links = [])
    ?(avoid_nodes = []) topo ~src ~dst =
  if max_hops < 1 then invalid_arg "Pathfind.all_routes: max_hops < 1";
  let ok_endpoint n = Node.may_terminate_flow (Topology.node topo n) in
  if
    (not (ok_endpoint src))
    || (not (ok_endpoint dst))
    || List.mem src avoid_nodes || List.mem dst avoid_nodes
    || dist.(src) > max_hops
  then []
  else begin
    let bad_link = Hashtbl.create (List.length avoid_links) in
    List.iter (fun l -> Hashtbl.replace bad_link l ()) avoid_links;
    let bad_node = Hashtbl.create (List.length avoid_nodes) in
    List.iter (fun n -> Hashtbl.replace bad_node n ()) avoid_nodes;
    let results = ref [] in
    (* DFS over switch-only interiors.  [path] is reversed.  A branch is
       cut as soon as the optimistic completion [hops + dist] overshoots
       the budget, so the search is bounded by the routes it can still
       emit instead of the whole reachable cone. *)
    let rec explore here path hops =
      if hops > max_hops then ()
      else
        List.iter
          (fun next ->
            if
              (not (List.mem next path))
              && (not (Hashtbl.mem bad_link (here, next)))
              && not (Hashtbl.mem bad_node next)
            then
              if next = dst then
                results := List.rev (next :: path) :: !results
              else if
                Node.is_switch (Topology.node topo next)
                && dist.(next) <> max_int
                && hops + dist.(next) <= max_hops
              then explore next (next :: path) (hops + 1))
          (Topology.out_neighbors topo here)
    in
    explore src [ src ] 1;
    !results
    |> List.sort (fun a b ->
           match compare (List.length a) (List.length b) with
           | 0 -> compare a b
           | c -> c)
    |> List.map (Route.make topo)
  end

let all_routes ?max_hops ?avoid_links ?avoid_nodes topo ~src ~dst =
  let dist = dist_to_dst topo ~dst in
  all_routes_with ~dist ?max_hops ?avoid_links ?avoid_nodes topo ~src ~dst

exception Enough

let has_at_least ?(max_hops = 8) ?(avoid_links = []) ?(avoid_nodes = []) topo
    ~src ~dst n =
  if n <= 0 then true
  else if max_hops < 1 then invalid_arg "Pathfind.has_at_least: max_hops < 1"
  else
    let ok_endpoint x = Node.may_terminate_flow (Topology.node topo x) in
    if
      (not (ok_endpoint src))
      || (not (ok_endpoint dst))
      || List.mem src avoid_nodes || List.mem dst avoid_nodes
    then false
    else begin
      let dist = dist_to_dst topo ~dst in
      if dist.(src) > max_hops then false
      else begin
        let bad_link = Hashtbl.create (List.length avoid_links) in
        List.iter (fun l -> Hashtbl.replace bad_link l ()) avoid_links;
        let bad_node = Hashtbl.create (List.length avoid_nodes) in
        List.iter (fun x -> Hashtbl.replace bad_node x ()) avoid_nodes;
        let found = ref 0 in
        let rec explore here path hops =
          if hops > max_hops then ()
          else
            List.iter
              (fun next ->
                if
                  (not (List.mem next path))
                  && (not (Hashtbl.mem bad_link (here, next)))
                  && not (Hashtbl.mem bad_node next)
                then
                  if next = dst then begin
                    incr found;
                    if !found >= n then raise Enough
                  end
                  else if
                    Node.is_switch (Topology.node topo next)
                    && dist.(next) <> max_int
                    && hops + dist.(next) <= max_hops
                  then explore next (next :: path) (hops + 1))
              (Topology.out_neighbors topo here)
        in
        (try explore src [ src ] 1 with Enough -> ());
        !found >= n
      end
    end

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let k_shortest ?max_hops ?avoid_links ?avoid_nodes ?(k = 4) topo ~src ~dst =
  take k (all_routes ?max_hops ?avoid_links ?avoid_nodes topo ~src ~dst)

let route_capacity topo route =
  Route.links route topo
  |> List.fold_left (fun acc (l : Link.t) -> min acc l.rate_bps) max_int

module Cache = struct
  type key = {
    k_src : Node.id;
    k_dst : Node.id;
    k_max_hops : int;
    k_avoid_links : (Node.id * Node.id) list; (* sorted *)
    k_avoid_nodes : Node.id list; (* sorted *)
  }

  type t = {
    topo : Topology.t;
    dists : (Node.id, int array) Hashtbl.t;
    routes : (key, Route.t list) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create topo =
    {
      topo;
      dists = Hashtbl.create 64;
      routes = Hashtbl.create 256;
      hits = 0;
      misses = 0;
    }

  let dist t ~dst =
    match Hashtbl.find_opt t.dists dst with
    | Some d -> d
    | None ->
        let d = dist_to_dst t.topo ~dst in
        Hashtbl.replace t.dists dst d;
        d

  let all_routes ?(max_hops = 8) ?(avoid_links = []) ?(avoid_nodes = []) t
      ~src ~dst =
    let key =
      {
        k_src = src;
        k_dst = dst;
        k_max_hops = max_hops;
        k_avoid_links = List.sort compare avoid_links;
        k_avoid_nodes = List.sort compare avoid_nodes;
      }
    in
    match Hashtbl.find_opt t.routes key with
    | Some r ->
        t.hits <- t.hits + 1;
        r
    | None ->
        t.misses <- t.misses + 1;
        let dist = dist t ~dst in
        let r =
          all_routes_with ~dist ~max_hops ~avoid_links ~avoid_nodes t.topo
            ~src ~dst
        in
        Hashtbl.replace t.routes key r;
        r

  let k_shortest ?max_hops ?avoid_links ?avoid_nodes ?(k = 4) t ~src ~dst =
    take k (all_routes ?max_hops ?avoid_links ?avoid_nodes t ~src ~dst)

  let shortest_len t ~src ~dst =
    let d = (dist t ~dst).(src) in
    if d = max_int then None else Some d

  let hits t = t.hits
  let misses t = t.misses
end
