let all_routes ?(max_hops = 8) ?(avoid_links = []) ?(avoid_nodes = []) topo
    ~src ~dst =
  if max_hops < 1 then invalid_arg "Pathfind.all_routes: max_hops < 1";
  let ok_endpoint n = Node.may_terminate_flow (Topology.node topo n) in
  if
    (not (ok_endpoint src))
    || (not (ok_endpoint dst))
    || List.mem src avoid_nodes || List.mem dst avoid_nodes
  then []
  else begin
    let results = ref [] in
    (* DFS over switch-only interiors.  [path] is reversed. *)
    let rec explore here path hops =
      if hops > max_hops then ()
      else
        List.iter
          (fun next ->
            if
              (not (List.mem next path))
              && (not (List.mem (here, next) avoid_links))
              && not (List.mem next avoid_nodes)
            then
              if next = dst then
                results := List.rev (next :: path) :: !results
              else if Node.is_switch (Topology.node topo next) then
                explore next (next :: path) (hops + 1))
          (Topology.out_neighbors topo here)
    in
    explore src [ src ] 1;
    !results
    |> List.sort (fun a b ->
           match compare (List.length a) (List.length b) with
           | 0 -> compare a b
           | c -> c)
    |> List.map (Route.make topo)
  end

let k_shortest ?max_hops ?avoid_links ?avoid_nodes ?(k = 4) topo ~src ~dst =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
  in
  take k (all_routes ?max_hops ?avoid_links ?avoid_nodes topo ~src ~dst)

let route_capacity topo route =
  Route.links route topo
  |> List.fold_left (fun acc (l : Link.t) -> min acc l.rate_bps) max_int
