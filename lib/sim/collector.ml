open Gmf_util

type stage =
  | S_first of Network.Node.id * Network.Node.id
  | S_in of Network.Node.id
  | S_out of Network.Node.id * Network.Node.id

type journey = {
  j_flow : Traffic.Flow.id;
  j_frame : int;
  j_seq : int;
  j_events : (Timeunit.ns * string) list;  (* chronological *)
  j_tainted : bool;
}

type t = {
  table : (Traffic.Flow.id * int, Stats.t) Hashtbl.t;
  stage_table : (Traffic.Flow.id * int * stage, Stats.t) Hashtbl.t;
  journey_cap : int;
  mutable journeys : journey list; (* reversed; at most [journey_cap] *)
  mutable retained : int; (* = List.length journeys *)
  mutable journey_total : int; (* journeys ever offered, kept or not *)
  mutable released : int;
  mutable completed : int;
  mutable tainted : int; (* completions that crossed a fault window *)
}

let default_journey_cap = 1024

let create ?(journey_cap = default_journey_cap) () =
  if journey_cap < 0 then invalid_arg "Collector.create: negative journey cap";
  {
    table = Hashtbl.create 64;
    stage_table = Hashtbl.create 256;
    journey_cap;
    journeys = [];
    retained = 0;
    journey_total = 0;
    released = 0;
    completed = 0;
    tainted = 0;
  }

(* Tainted completions count as completed but stay out of the response
   statistics: a journey a fault window may have perturbed cannot witness
   a bound violation, so cross-checks compare clean journeys only. *)
let record ?(tainted = false) t ~flow ~frame ~released ~completed =
  if completed < released then
    invalid_arg "Collector.record: completion before release";
  if tainted then t.tainted <- t.tainted + 1
  else begin
    let key = (flow.Traffic.Flow.id, frame) in
    let stats =
      match Hashtbl.find_opt t.table key with
      | Some s -> s
      | None ->
          let s = Stats.create () in
          Hashtbl.replace t.table key s;
          s
    in
    Stats.add stats (completed - released)
  end;
  t.completed <- t.completed + 1

let note_released t = t.released <- t.released + 1

let completed_count t = t.completed
let released_count t = t.released
let tainted_count t = t.tainted
let incomplete t = t.released - t.completed

let responses t ~flow ~frame = Hashtbl.find_opt t.table (flow, frame)

let max_response t ~flow ~frame =
  Option.map Stats.max (responses t ~flow ~frame)

let max_response_flow t ~flow =
  Hashtbl.fold
    (fun (fid, _) stats acc ->
      if fid <> flow then acc
      else
        match acc with
        | None -> Some (Stats.max stats)
        | Some m -> Some (max m (Stats.max stats)))
    t.table None

let record_stage_span t ~flow ~frame ~stage ~span =
  if span < 0 then invalid_arg "Collector.record_stage_span: negative span";
  let key = (flow, frame, stage) in
  let stats =
    match Hashtbl.find_opt t.stage_table key with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.replace t.stage_table key s;
        s
  in
  Stats.add stats span

let max_stage_span t ~flow ~frame ~stage =
  Option.map Stats.max (Hashtbl.find_opt t.stage_table (flow, frame, stage))

let stages_seen t ~flow ~frame =
  Hashtbl.fold
    (fun (f, k, stage) _ acc ->
      if f = flow && k = frame then stage :: acc else acc)
    t.stage_table []
  |> List.sort_uniq compare

let record_journey ?(tainted = false) t ~flow ~frame ~seq ~events =
  t.journey_total <- t.journey_total + 1;
  if t.retained < t.journey_cap then begin
    t.journeys <-
      { j_flow = flow; j_frame = frame; j_seq = seq;
        j_events = List.sort compare events; j_tainted = tainted }
      :: t.journeys;
    t.retained <- t.retained + 1
  end

let journeys t = List.rev t.journeys
let journey_count t = t.journey_total

let flows_seen t =
  Hashtbl.fold (fun (fid, _) _ acc -> fid :: acc) t.table []
  |> List.sort_uniq compare
