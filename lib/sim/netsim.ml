open Gmf_util

(* ------------------------------------------------------------------ *)
(* Entities                                                           *)
(* ------------------------------------------------------------------ *)

type packet = {
  flow : Traffic.Flow.t;
  frame : int;
  seq : int; (* per-flow packet sequence number *)
  released : Timeunit.ns;
  mutable last_release : Timeunit.ns;
      (* when the packet's final Ethernet frame entered the source queue *)
  nfrags : int;
  mutable arrived : int;
  mutable marks : ((char * Network.Node.id) * Timeunit.ns) list;
      (* last time a fragment crossed a stage boundary: 'a' = arrived at a
         switch's ingress FIFO, 'e' = enqueued in its priority queue *)
}

type fragment = { packet : packet; wire_bits : int }

(* An outgoing NIC: a FIFO buffer feeding one directed link.  Source nodes
   use it directly as their per-link output queue; switches use it as the
   network card's FIFO that the egress task refills.  Following the paper's
   model, a frame occupies the card until its transmission completes, so
   the egress task refills only then — the link can idle for up to one task
   rotation between frames, exactly the effect the analysis' NX * CIRC
   terms cover.  [on_idle] fires when the card drains completely. *)
type port = {
  link : Network.Link.t;
  buffer : fragment Queue.t;
  mutable busy : bool;
  mutable down : bool; (* a downed link stops transmitting *)
  mutable on_idle : unit -> unit;
}

type task_kind = Task_ingress | Task_egress

type iface = {
  neighbor : Network.Node.id;
  in_fifo : fragment Queue.t;
  prio : fragment Queue.t array; (* indexed by 802.1p priority, 0..7 *)
  out_port : port option; (* None when there is no link towards neighbor *)
  mutable in_fifo_max : int;  (* high-water mark of the ingress NIC FIFO *)
  mutable prio_backlog : int; (* current total frames across prio queues *)
  mutable prio_max : int;     (* high-water mark of the egress prio queues *)
  mutable drops : int;        (* frames discarded at this interface's
                                 full queues, for attribution *)
}

type processor = {
  sched : Stride.Scheduler.t;
  tasks : (task_kind * iface) array; (* index = stride task id *)
  croute : Timeunit.ns;
  csend : Timeunit.ns;
  mutable running : bool;
  mutable stalled : bool; (* a stalled switch CPU pauses its rotation *)
  mutable busy_ns : Timeunit.ns; (* cumulative task execution time *)
}

type switch_state = {
  sw_node : Network.Node.id;
  ifaces : iface array;
  by_neighbor : (Network.Node.id, iface) Hashtbl.t;
  proc_of_iface : processor array; (* same index space as [ifaces] *)
}

type state = {
  engine : Engine.t;
  scenario : Traffic.Scenario.t;
  collector : Collector.t;
  switches : (Network.Node.id, switch_state) Hashtbl.t;
  source_ports : (Network.Node.id * Network.Node.id, port) Hashtbl.t;
  frag_bits : (Traffic.Flow.id * int, int list) Hashtbl.t;
  config : Sim_config.t;
  master_rng : Rng.t;
  faults : Gmf_faults.Fault.schedule;
  loss : float; (* frame-loss probability, 0 when no fault asks for it *)
  loss_rng : Rng.t;
  mutable dropped : int;
  mutable fault_drops : int; (* frames lost to downed links / frame loss *)
  mutable traced : int; (* journeys recorded so far *)
}

type report = {
  collector : Collector.t;
  sim_end : Timeunit.ns;
  packets_released : int;
  packets_completed : int;
  fragments_dropped : int;
      (* Ethernet frames discarded at full switch queues (always 0 with
         unbounded queues) *)
  cpu_utilization : (Network.Node.id * float) list;
      (* per switch: the busiest processor's task-execution time as a
         fraction of the simulated span *)
  egress_backlog : ((Network.Node.id * Network.Node.id) * int) list;
      (* ((switch, next hop), max frames ever waiting in its priority
         queues), for every switch interface with an outgoing link *)
  ingress_backlog : ((Network.Node.id * Network.Node.id) * int) list;
      (* ((switch, predecessor), max frames ever waiting in its NIC
         ingress FIFO) *)
  dropped_by_port : ((Network.Node.id * Network.Node.id) * int) list;
      (* ((switch, neighbor), frames that interface discarded at full
         queues) — only interfaces with at least one drop *)
  fault_drops : int;
      (* frames lost to downed links (Drop policy) or random frame loss *)
  tainted_completions : int;
      (* completed packets whose life overlapped a fault window; excluded
         from the response statistics *)
}

(* ------------------------------------------------------------------ *)
(* Link transmission                                                  *)
(* ------------------------------------------------------------------ *)

(* Full-queue drop accounting, shared by the ingress-FIFO and
   priority-queue sites so every discard is attributable to the interface
   that refused the frame. *)
let drop_at st iface =
  st.dropped <- st.dropped + 1;
  iface.drops <- iface.drops + 1

let rec try_transmit st port =
  if port.down then begin
    (* A downed link never transmits.  Under the [Drop] policy anything
       queued behind it is discarded now; under [Hold] the frames wait in
       the card for [Link_up]. *)
    if st.faults.Gmf_faults.Fault.policy = Gmf_faults.Fault.Drop
       && not (Queue.is_empty port.buffer)
    then begin
      st.fault_drops <- st.fault_drops + Queue.length port.buffer;
      Queue.clear port.buffer
    end
  end
  else if not port.busy then
    match Queue.take_opt port.buffer with
    | None -> ()
    | Some frag ->
        port.busy <- true;
        let tx =
          Timeunit.tx_time_ns ~bits:frag.wire_bits
            ~rate_bps:port.link.Network.Link.rate_bps
        in
        Engine.schedule_after st.engine ~delay:tx (fun () ->
            port.busy <- false;
            Engine.schedule_after st.engine ~delay:port.link.Network.Link.prop
              (fun () -> deliver st port.link frag);
            if Queue.is_empty port.buffer then port.on_idle ();
            try_transmit st port)

(* ------------------------------------------------------------------ *)
(* Reception                                                          *)
(* ------------------------------------------------------------------ *)

and set_mark packet kind node time =
  packet.marks <- ((kind, node), time) :: List.remove_assoc (kind, node) packet.marks

(* Derive per-stage residences from the boundary marks once the packet has
   fully arrived, mirroring the analysis' stage decomposition.  When the
   span tracer is live, each residence also becomes a sim-time trace event
   (one lane per flow) so a whole run can be opened in Perfetto. *)
and stage_trace_name = function
  | Collector.S_first (s, d) -> Printf.sprintf "first %d->%d" s d
  | Collector.S_in n -> Printf.sprintf "in %d" n
  | Collector.S_out (s, d) -> Printf.sprintf "out %d->%d" s d

and record_stage_spans (st : state) packet completed =
  let tracer = Gmf_obs.Tracer.default in
  let record stage from_t to_t =
    if from_t >= 0 && to_t >= from_t then begin
      Collector.record_stage_span st.collector
        ~flow:packet.flow.Traffic.Flow.id ~frame:packet.frame ~stage
        ~span:(to_t - from_t);
      if Gmf_obs.Tracer.enabled tracer then
        Gmf_obs.Tracer.emit tracer ~cat:"stage"
          ~tid:packet.flow.Traffic.Flow.id ~name:(stage_trace_name stage)
          ~begin_ns:from_t ~end_ns:to_t
    end
  in
  let mark kind node =
    Option.value ~default:(-1) (List.assoc_opt (kind, node) packet.marks)
  in
  let route = packet.flow.Traffic.Flow.route in
  let dest = Network.Route.destination packet.flow.Traffic.Flow.route in
  let arrival node = if node = dest then completed else mark 'a' node in
  let source = Network.Route.source route in
  let first_next = Network.Route.succ route source in
  record (Collector.S_first (source, first_next)) packet.last_release
    (arrival first_next);
  List.iter
    (fun n ->
      let next = Network.Route.succ route n in
      record (Collector.S_in n) (mark 'a' n) (mark 'e' n);
      record (Collector.S_out (n, next)) (mark 'e' n) (arrival next))
    (Network.Route.intermediate_switches route)

and deliver st link frag =
  if st.loss > 0. && Rng.float st.loss_rng 1.0 < st.loss then
    (* The frame was lost on the wire; its packet never completes. *)
    st.fault_drops <- st.fault_drops + 1
  else deliver_intact st link frag

and deliver_intact st link frag =
  let here = link.Network.Link.dst in
  let packet = frag.packet in
  if here = Traffic.Flow.destination packet.flow then begin
    packet.arrived <- packet.arrived + 1;
    if packet.arrived = packet.nfrags then begin
      let completed = Engine.now st.engine in
      let tainted =
        (not (Gmf_faults.Fault.is_empty st.faults))
        && Gmf_faults.Fault.taints st.faults
             ~route:packet.flow.Traffic.Flow.route ~from:packet.released
             ~until:completed
      in
      Collector.record ~tainted st.collector ~flow:packet.flow
        ~frame:packet.frame ~released:packet.released ~completed;
      if not tainted then record_stage_spans st packet completed;
      let tracer = Gmf_obs.Tracer.default in
      if Gmf_obs.Tracer.enabled tracer then
        Gmf_obs.Tracer.emit tracer ~cat:"packet"
          ~tid:packet.flow.Traffic.Flow.id
          ~name:
            (Printf.sprintf "%s#%d" packet.flow.Traffic.Flow.name packet.frame)
          ~begin_ns:packet.released ~end_ns:completed;
      if st.traced < st.config.Sim_config.trace_limit then begin
        st.traced <- st.traced + 1;
        let events =
          ((packet.released, "released at source") ::
           (packet.last_release, "last Ethernet frame queued") ::
           (completed, "all Ethernet frames at destination") ::
           List.map
             (fun ((kind, node), time) ->
               ( time,
                 Printf.sprintf
                   (if kind = 'a' then "last frame into switch %d"
                    else "last frame into priority queue of switch %d")
                   node ))
             packet.marks)
        in
        Collector.record_journey ~tainted st.collector
          ~flow:packet.flow.Traffic.Flow.id ~frame:packet.frame
          ~seq:packet.seq ~events
      end
    end
  end
  else begin
    let sw =
      match Hashtbl.find_opt st.switches here with
      | Some sw -> sw
      | None ->
          invalid_arg
            (Printf.sprintf "Netsim: node %d relays but is not a switch" here)
    in
    let iface = Hashtbl.find sw.by_neighbor link.Network.Link.src in
    let full =
      match st.config.Sim_config.queue_capacity with
      | Some cap -> Queue.length iface.in_fifo >= cap
      | None -> false
    in
    if full then drop_at st iface
    else begin
      set_mark frag.packet 'a' here (Engine.now st.engine);
      Queue.push frag iface.in_fifo;
      if Queue.length iface.in_fifo > iface.in_fifo_max then
        iface.in_fifo_max <- Queue.length iface.in_fifo;
      let idx = ref (-1) in
      Array.iteri (fun i ifc -> if ifc == iface then idx := i) sw.ifaces;
      wake st sw sw.proc_of_iface.(!idx)
    end
  end

(* ------------------------------------------------------------------ *)
(* Switch CPU: stride-scheduled ingress/egress tasks                  *)
(* ------------------------------------------------------------------ *)

and highest_prio_frag iface =
  let rec scan p =
    if p < 0 then None
    else
      match Queue.take_opt iface.prio.(p) with
      | Some frag -> Some frag
      | None -> scan (p - 1)
  in
  scan (Array.length iface.prio - 1)

and task_ready (kind, iface) =
  match kind with
  | Task_ingress -> not (Queue.is_empty iface.in_fifo)
  | Task_egress -> begin
      match iface.out_port with
      | None -> false
      | Some port ->
          (* The card is free only when nothing waits in it AND nothing is
             on the wire (paper model: one committed frame at a time). *)
          Queue.is_empty port.buffer && not port.busy
          && Array.exists (fun q -> not (Queue.is_empty q)) iface.prio
    end

(* One dispatch decision.  A task with no work costs nothing (Click's idle
   poll is far below CROUTE/CSEND); after a full fruitless rotation the CPU
   sleeps until {!wake}.  Skipping idle tasks for free makes the simulator
   only faster than the analysis' CIRC-per-rotation worst case, never
   slower, preserving the bound-domination property checked by E5. *)
and cpu_step st sw proc scans =
  if proc.stalled then
    (* A stalled CPU stops its rotation; the un-stall event wakes it. *)
    proc.running <- false
  else if scans >= Array.length proc.tasks then proc.running <- false
  else begin
    let tid = Stride.Scheduler.select proc.sched in
    let ((kind, iface) as task) = proc.tasks.(tid) in
    if not (task_ready task) then begin
      if st.config.Sim_config.busy_poll then begin
        (* Adversarial CPU model: the idle task still burns its quantum,
           matching the CIRC(N) worst case of the analysis. *)
        let cost =
          match kind with
          | Task_ingress -> proc.croute
          | Task_egress -> proc.csend
        in
        proc.busy_ns <- proc.busy_ns + cost;
        Engine.schedule_after st.engine ~delay:cost (fun () ->
            cpu_step st sw proc (scans + 1))
      end
      else cpu_step st sw proc (scans + 1)
    end
    else
      match kind with
      | Task_ingress ->
          let frag = Queue.pop iface.in_fifo in
          proc.busy_ns <- proc.busy_ns + proc.croute;
          Engine.schedule_after st.engine ~delay:proc.croute (fun () ->
              route_fragment st sw frag;
              cpu_step st sw proc 0)
      | Task_egress ->
          let frag = Option.get (highest_prio_frag iface) in
          iface.prio_backlog <- iface.prio_backlog - 1;
          proc.busy_ns <- proc.busy_ns + proc.csend;
          Engine.schedule_after st.engine ~delay:proc.csend (fun () ->
              let port = Option.get iface.out_port in
              Queue.push frag port.buffer;
              try_transmit st port;
              cpu_step st sw proc 0)
  end

and route_fragment st sw frag =
  let next = Network.Route.succ frag.packet.flow.Traffic.Flow.route sw.sw_node in
  match Hashtbl.find_opt sw.by_neighbor next with
  | None ->
      invalid_arg
        (Printf.sprintf "Netsim: switch %d has no interface towards %d"
           sw.sw_node next)
  | Some iface ->
      let full =
        match st.config.Sim_config.queue_capacity with
        | Some cap -> iface.prio_backlog >= cap
        | None -> false
      in
      if full then drop_at st iface
      else begin
        set_mark frag.packet 'e' sw.sw_node (Engine.now st.engine);
        let prio =
          Traffic.Flow.priority_on frag.packet.flow ~src:sw.sw_node ~dst:next
        in
        Queue.push frag iface.prio.(prio);
        iface.prio_backlog <- iface.prio_backlog + 1;
        if iface.prio_backlog > iface.prio_max then
          iface.prio_max <- iface.prio_backlog;
        let idx = ref (-1) in
        Array.iteri (fun i ifc -> if ifc == iface then idx := i) sw.ifaces;
        wake st sw sw.proc_of_iface.(!idx)
      end

and wake st sw proc =
  if not proc.running then begin
    proc.running <- true;
    Engine.schedule_after st.engine ~delay:0 (fun () -> cpu_step st sw proc 0)
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let neighbors_of topo node =
  (* Union of outgoing and incoming link peers, deterministic order. *)
  let outs = Network.Topology.out_neighbors topo node in
  let ins =
    Network.Topology.links topo
    |> List.filter_map (fun l ->
           if l.Network.Link.dst = node then Some l.Network.Link.src else None)
  in
  List.sort_uniq compare (outs @ ins)

let build_switch st node =
  let topo = Traffic.Scenario.topo st.scenario in
  let model = Traffic.Scenario.switch_model st.scenario node in
  let neighbor_ids = neighbors_of topo node in
  let make_iface neighbor =
    let out_port =
      Network.Topology.find_link topo ~src:node ~dst:neighbor
      |> Option.map (fun link ->
             { link; buffer = Queue.create (); busy = false; down = false;
               on_idle = (fun () -> ()) })
    in
    {
      neighbor;
      in_fifo = Queue.create ();
      prio = Array.init 8 (fun _ -> Queue.create ());
      out_port;
      in_fifo_max = 0;
      prio_backlog = 0;
      prio_max = 0;
      drops = 0;
    }
  in
  let ifaces = Array.of_list (List.map make_iface neighbor_ids) in
  let per_proc = Click.Switch_model.interfaces_per_processor model in
  let nprocs = Timeunit.cdiv (max 1 (Array.length ifaces)) per_proc in
  let proc_ifaces =
    Array.init nprocs (fun p ->
        Array.to_list ifaces
        |> List.filteri (fun i _ -> i / per_proc = p))
  in
  let make_proc ifcs =
    let tasks =
      List.concat_map
        (fun ifc -> [ (Task_ingress, ifc); (Task_egress, ifc) ])
        ifcs
      |> Array.of_list
    in
    {
      sched = Stride.Scheduler.round_robin ~ntasks:(Array.length tasks);
      tasks;
      croute = model.Click.Switch_model.croute;
      csend = model.Click.Switch_model.csend;
      running = false;
      stalled = false;
      busy_ns = 0;
    }
  in
  let procs = Array.map make_proc proc_ifaces in
  let proc_of_iface =
    Array.init (Array.length ifaces) (fun i -> procs.(i / per_proc))
  in
  let by_neighbor = Hashtbl.create 8 in
  Array.iter (fun ifc -> Hashtbl.replace by_neighbor ifc.neighbor ifc) ifaces;
  let sw = { sw_node = node; ifaces; by_neighbor; proc_of_iface } in
  (* NIC drain events make the egress task runnable again. *)
  Array.iteri
    (fun i ifc ->
      match ifc.out_port with
      | None -> ()
      | Some port ->
          port.on_idle <- (fun () -> wake st sw sw.proc_of_iface.(i)))
    ifaces;
  Hashtbl.replace st.switches node sw

let source_port st source next_hop =
  let key = (source, next_hop) in
  match Hashtbl.find_opt st.source_ports key with
  | Some port -> port
  | None ->
      let topo = Traffic.Scenario.topo st.scenario in
      let link = Network.Topology.link_exn topo ~src:source ~dst:next_hop in
      let port =
        { link; buffer = Queue.create (); busy = false; down = false;
          on_idle = (fun () -> ()) }
      in
      Hashtbl.replace st.source_ports key port;
      port

let fragment_bits st flow frame =
  let key = (flow.Traffic.Flow.id, frame) in
  match Hashtbl.find_opt st.frag_bits key with
  | Some bits -> bits
  | None ->
      let nbits = Traffic.Flow.nbits flow frame in
      let bits = Ethernet.Fragment.fragment_wire_bits ~nbits in
      Hashtbl.replace st.frag_bits key bits;
      bits

(* ------------------------------------------------------------------ *)
(* Traffic generation                                                 *)
(* ------------------------------------------------------------------ *)

let jitter_offsets st rng ~nfrags ~gj =
  if gj = 0 || nfrags <= 1 then List.init nfrags (fun _ -> 0)
  else
    match st.config.Sim_config.jitter with
    | Sim_config.Bunched -> List.init nfrags (fun _ -> 0)
    | Sim_config.Spread -> List.init nfrags (fun f -> f * gj / nfrags)
    | Sim_config.Random ->
        let offsets =
          List.init (nfrags - 1) (fun _ -> Rng.int rng gj)
          |> List.sort compare
        in
        0 :: offsets

let start_flow st flow =
  let rng = Rng.split st.master_rng in
  let spec = flow.Traffic.Flow.spec in
  let n = Gmf.Spec.n spec in
  let source = Traffic.Flow.source flow in
  let next_hop = Network.Route.succ flow.Traffic.Flow.route source in
  let port = source_port st source next_hop in
  let seq_counter = ref 0 in
  let release_packet k time =
    Collector.note_released st.collector;
    let bits = fragment_bits st flow k in
    let packet =
      { flow; frame = k; seq = !seq_counter; released = time;
        last_release = time; nfrags = List.length bits; arrived = 0;
        marks = [] }
    in
    incr seq_counter;
    let gj = (Gmf.Spec.frame spec k).Gmf.Frame_spec.jitter in
    let offsets = jitter_offsets st rng ~nfrags:packet.nfrags ~gj in
    packet.last_release <-
      time + List.fold_left max 0 offsets;
    List.iter2
      (fun wire_bits offset ->
        Engine.schedule_at st.engine ~at:(time + offset) (fun () ->
            Queue.push { packet; wire_bits } port.buffer;
            try_transmit st port))
      bits offsets
  in
  let rec arrivals k time =
    if time < st.config.Sim_config.duration then begin
      release_packet k time;
      let period = (Gmf.Spec.frame spec k).Gmf.Frame_spec.period in
      let slack =
        match st.config.Sim_config.release with
        | Sim_config.Periodic -> 0
        | Sim_config.Random_slack f ->
            if period = 0 then 0
            else
              int_of_float
                (Rng.exponential rng ~mean:(f *. float_of_int period))
      in
      let next = time + period + slack in
      Engine.schedule_at st.engine ~at:next (fun () ->
          arrivals ((k + 1) mod n) next)
    end
  in
  let phase =
    if st.config.Sim_config.random_phasing then
      Rng.int rng (Gmf.Spec.tsum spec)
    else 0
  in
  Engine.schedule_at st.engine ~at:phase (fun () -> arrivals 0 phase)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

(* Resolve a directed link to its simulated output port: a source node's
   per-link queue or a switch interface's NIC.  A link no flow transmits
   on has no port — faulting it is a harmless no-op. *)
let fault_port st (a, b) =
  match Hashtbl.find_opt st.source_ports (a, b) with
  | Some port -> Some port
  | None -> (
      match Hashtbl.find_opt st.switches a with
      | None -> None
      | Some sw -> (
          match Hashtbl.find_opt sw.by_neighbor b with
          | None -> None
          | Some iface -> iface.out_port))

(* Processors deduplicated by physical identity (they contain closures,
   so structural comparison is unusable). *)
let distinct_procs sw =
  Array.fold_left
    (fun acc p -> if List.memq p acc then acc else p :: acc)
    [] sw.proc_of_iface
  |> List.rev

let install_fault st = function
  | Gmf_faults.Fault.Frame_loss _ -> () (* folded into [st.loss] *)
  | Gmf_faults.Fault.Link_down (lid, at) -> (
      match fault_port st lid with
      | None -> ()
      | Some port ->
          Engine.schedule_at st.engine ~at (fun () ->
              port.down <- true;
              (* Applies the Drop policy to anything already queued. *)
              try_transmit st port))
  | Gmf_faults.Fault.Link_up (lid, at) -> (
      match fault_port st lid with
      | None -> ()
      | Some port ->
          Engine.schedule_at st.engine ~at (fun () ->
              port.down <- false;
              try_transmit st port;
              (* Held frames may all have been drained meanwhile; let the
                 egress task refill an idle card. *)
              if Queue.is_empty port.buffer && not port.busy then
                port.on_idle ()))
  | Gmf_faults.Fault.Switch_stall (node, at, duration) -> (
      match Hashtbl.find_opt st.switches node with
      | None -> ()
      | Some sw ->
          let procs = distinct_procs sw in
          Engine.schedule_at st.engine ~at (fun () ->
              List.iter (fun p -> p.stalled <- true) procs);
          Engine.schedule_at st.engine ~at:(at + duration) (fun () ->
              List.iter
                (fun p ->
                  p.stalled <- false;
                  wake st sw p)
                procs))

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(config = Sim_config.default)
    ?(faults = Gmf_faults.Fault.empty) scenario =
  (match Gmf_faults.Fault.validate (Traffic.Scenario.topo scenario) faults with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Netsim.run: " ^ msg));
  let st =
    {
      engine = Engine.create ();
      scenario;
      collector =
        Collector.create
          ~journey_cap:
            (max Collector.default_journey_cap
               config.Sim_config.trace_limit)
          ();
      switches = Hashtbl.create 16;
      source_ports = Hashtbl.create 16;
      frag_bits = Hashtbl.create 64;
      config;
      master_rng = Rng.create ~seed:config.Sim_config.seed;
      faults;
      loss = Gmf_faults.Fault.loss_probability faults;
      (* Independent of [master_rng] so enabling frame loss does not
         perturb the per-flow arrival streams. *)
      loss_rng = Rng.create ~seed:(config.Sim_config.seed lxor 0x7fa17);
      dropped = 0;
      fault_drops = 0;
      traced = 0;
    }
  in
  List.iter (build_switch st) (Traffic.Scenario.switch_nodes scenario);
  List.iter (start_flow st) (Traffic.Scenario.flows scenario);
  List.iter (install_fault st) faults.Gmf_faults.Fault.events;
  let wall_before = Unix.gettimeofday () in
  Engine.run st.engine;
  let wall_ns = (Unix.gettimeofday () -. wall_before) *. 1e9 in
  let egress_backlog = ref [] and ingress_backlog = ref [] in
  let dropped_by_port = ref [] in
  let cpu_utilization = ref [] in
  let span = max 1 (Engine.now st.engine) in
  Hashtbl.iter
    (fun node sw ->
      let busiest =
        List.fold_left (fun acc p -> max acc p.busy_ns) 0 (distinct_procs sw)
      in
      cpu_utilization :=
        (node, float_of_int busiest /. float_of_int span)
        :: !cpu_utilization;
      Array.iter
        (fun ifc ->
          if ifc.out_port <> None then
            egress_backlog := ((node, ifc.neighbor), ifc.prio_max)
              :: !egress_backlog;
          ingress_backlog := ((node, ifc.neighbor), ifc.in_fifo_max)
            :: !ingress_backlog;
          if ifc.drops > 0 then
            dropped_by_port := ((node, ifc.neighbor), ifc.drops)
              :: !dropped_by_port)
        sw.ifaces)
    st.switches;
  let egress_backlog = List.sort compare !egress_backlog in
  let ingress_backlog = List.sort compare !ingress_backlog in
  let dropped_by_port = List.sort compare !dropped_by_port in
  let metrics = Gmf_obs.Metrics.default in
  if Gmf_obs.Metrics.enabled metrics then begin
    let counter = Gmf_obs.Metrics.counter metrics in
    let gauge name v = Gmf_obs.Metrics.set_gauge (Gmf_obs.Metrics.gauge metrics name) v in
    Gmf_obs.Metrics.incr ~by:(Engine.dispatched st.engine)
      (counter "sim.events.dispatched");
    Gmf_obs.Metrics.incr
      ~by:(Collector.released_count st.collector)
      (counter "sim.packets.released");
    Gmf_obs.Metrics.incr
      ~by:(Collector.completed_count st.collector)
      (counter "sim.packets.completed");
    Gmf_obs.Metrics.incr ~by:st.dropped (counter "sim.fragments.dropped");
    Gmf_obs.Metrics.incr
      ~by:(Collector.journey_count st.collector)
      (counter "sim.journeys.recorded");
    gauge "sim.heap.max_pending" (float_of_int (Engine.max_pending st.engine));
    let high_water rows =
      List.fold_left (fun acc (_, frames) -> max acc frames) 0 rows
    in
    gauge "sim.queue.egress_high_water"
      (float_of_int (high_water egress_backlog));
    gauge "sim.queue.ingress_high_water"
      (float_of_int (high_water ingress_backlog));
    gauge "sim.wall_ms" (wall_ns /. 1e6);
    if wall_ns > 0. then
      gauge "sim.ratio.sim_per_wall"
        (float_of_int (Engine.now st.engine) /. wall_ns);
    if not (Gmf_faults.Fault.is_empty faults) then begin
      Gmf_obs.Metrics.incr
        ~by:(List.length faults.Gmf_faults.Fault.events)
        (counter "faults.injected");
      Gmf_obs.Metrics.incr ~by:st.fault_drops (counter "sim.fault_drops");
      Gmf_obs.Metrics.incr
        ~by:(Collector.tainted_count st.collector)
        (counter "sim.packets.tainted")
    end
  end;
  {
    collector = st.collector;
    sim_end = Engine.now st.engine;
    packets_released = Collector.released_count st.collector;
    packets_completed = Collector.completed_count st.collector;
    fragments_dropped = st.dropped;
    cpu_utilization = List.sort compare !cpu_utilization;
    egress_backlog;
    ingress_backlog;
    dropped_by_port;
    fault_drops = st.fault_drops;
    tainted_completions = Collector.tainted_count st.collector;
  }
