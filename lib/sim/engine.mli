(** Discrete-event simulation engine.

    A time-ordered heap of callbacks.  Events scheduled at the same instant
    run in scheduling order (the heap is FIFO among equal keys), which keeps
    runs deterministic. *)

type t

val create : unit -> t

val now : t -> Gmf_util.Timeunit.ns
(** Current simulation time (0 before the first event runs). *)

val schedule_at : t -> at:Gmf_util.Timeunit.ns -> (unit -> unit) -> unit
(** [schedule_at t ~at f] runs [f] at absolute time [at].
    Raises [Invalid_argument] if [at] is in the past. *)

val schedule_after : t -> delay:Gmf_util.Timeunit.ns -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] runs [f] [delay] nanoseconds from now.
    Raises [Invalid_argument] on a negative delay. *)

val run : ?until:Gmf_util.Timeunit.ns -> t -> unit
(** [run ?until t] processes events in time order.  Events with a timestamp
    strictly greater than [until] remain queued (default: run to
    exhaustion). *)

val pending : t -> int
(** Number of queued events. *)

val dispatched : t -> int
(** Events executed so far — the simulator's work counter, published as the
    [sim.events.dispatched] metric at the end of a run. *)

val max_pending : t -> int
(** High-water mark of the event heap since {!create}. *)
