(** Discrete-event model of the whole network of Figure 5: GMF traffic
    sources, work-conserving source output queues, links with transmission
    and propagation delay, and software-implemented Ethernet switches whose
    CPU runs the per-interface ingress/egress tasks under stride (round-
    robin) scheduling.

    The model matches the analysis assumptions except where the analysis is
    deliberately pessimistic (an idle task costs the simulator nothing while
    the analysis charges a full CIRC rotation), so for any scenario and any
    run the observed response times must stay at or below the analytic
    bounds — the soundness check of experiment E5. *)

type report = {
  collector : Collector.t;
  sim_end : Gmf_util.Timeunit.ns;  (** Time of the last processed event. *)
  packets_released : int;
  packets_completed : int;
  fragments_dropped : int;
      (** Ethernet frames discarded at full switch queues — always 0 under
          the default unbounded queues; see
          [Sim_config.t.queue_capacity]. *)
  cpu_utilization : (Network.Node.id * float) list;
      (** Per switch: the busiest processor's cumulative task-execution
          time as a fraction of the simulated span — an operational
          counterpart of the ingress-task utilization condition. *)
  egress_backlog : ((Network.Node.id * Network.Node.id) * int) list;
      (** High-water marks of every switch output priority queue, keyed by
          (switch, next hop) and measured in Ethernet frames — compared
          against [Analysis.Backlog.egress_bounds] by experiment E11. *)
  ingress_backlog : ((Network.Node.id * Network.Node.id) * int) list;
      (** High-water marks of every switch ingress NIC FIFO, keyed by
          (switch, sending neighbour). *)
  dropped_by_port : ((Network.Node.id * Network.Node.id) * int) list;
      (** Attribution of [fragments_dropped]: frames each switch interface
          discarded at its full queues, keyed by (switch, neighbour); only
          interfaces with at least one drop appear. *)
  fault_drops : int;
      (** Ethernet frames lost to injected faults — discarded behind a
          downed link under {!Gmf_faults.Fault.Drop}, or lost to a
          [Frame_loss] probability.  0 in fault-free runs. *)
  tainted_completions : int;
      (** Completed packets whose lifetime overlapped a fault window
          ({!Gmf_faults.Fault.taints}); they are excluded from the
          response statistics so sim-vs-analysis cross-checks only assert
          bounds on journeys the faults could not have perturbed. *)
}

val run :
  ?config:Sim_config.t -> ?faults:Gmf_faults.Fault.schedule ->
  Traffic.Scenario.t -> report
(** [run ?config ?faults scenario] simulates the scenario for
    [config.duration] of traffic generation, drains in-flight packets, and
    returns the collected response times.

    [faults] (default {!Gmf_faults.Fault.empty}) injects a fault schedule:
    downed links stop transmitting — frames queued behind them wait or are
    discarded per the schedule's {!Gmf_faults.Fault.policy} — stalled
    switches pause their stride rotation for the stall's duration, and a
    [Frame_loss] probability discards delivered frames at random (from a
    dedicated RNG stream, so the traffic arrival pattern is unchanged).
    Journeys overlapping a fault window are tagged tainted, see
    [tainted_completions].

    Raises [Invalid_argument] if a flow's route uses a link absent from the
    topology (scenarios built through [Traffic.Scenario.make] cannot
    trigger this), or if the fault schedule fails
    {!Gmf_faults.Fault.validate}. *)
