open Gmf_util

type event = { time : Timeunit.ns; action : unit -> unit }

type t = {
  heap : event Heap.t;
  mutable clock : Timeunit.ns;
  mutable dispatched : int;
  mutable max_pending : int;
}

let create () =
  {
    heap = Heap.create ~cmp:(fun a b -> compare a.time b.time) ();
    clock = 0;
    dispatched = 0;
    max_pending = 0;
  }

let now t = t.clock

let schedule_at t ~at action =
  if at < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.heap { time = at; action };
  let n = Heap.length t.heap in
  if n > t.max_pending then t.max_pending <- n

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~at:(t.clock + delay) action

let run ?(until = max_int) t =
  let rec loop () =
    match Heap.peek t.heap with
    | None -> ()
    | Some ev when ev.time > until -> ()
    | Some _ ->
        let ev = Heap.pop_exn t.heap in
        t.clock <- ev.time;
        t.dispatched <- t.dispatched + 1;
        ev.action ();
        loop ()
  in
  loop ()

let pending t = Heap.length t.heap
let dispatched t = t.dispatched
let max_pending t = t.max_pending
