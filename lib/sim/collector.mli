(** Per-packet response-time collection.

    The response time of a packet is the span from its GMF arrival at the
    source (the enqueue of its first Ethernet frame) until the destination
    has received {e all} its Ethernet frames — the paper's definition in
    Section 2.1. *)

type stage =
  | S_first of Network.Node.id * Network.Node.id
      (** Source output queue + first link (paper Section 3.2). *)
  | S_in of Network.Node.id  (** Switch ingress, NIC FIFO -> priority queue. *)
  | S_out of Network.Node.id * Network.Node.id
      (** Priority queue -> received at the next node. *)

type t

val default_journey_cap : int
(** 1024 — the default bound on retained journeys. *)

val create : ?journey_cap:int -> unit -> t
(** [create ()] is an empty collector retaining at most [journey_cap]
    (default {!default_journey_cap}) traced journeys; later
    {!record_journey} calls still count in {!journey_count} but are not
    stored, so unbounded simulations cannot grow the journey list without
    limit.  Raises [Invalid_argument] on a negative cap. *)

val record :
  ?tainted:bool ->
  t ->
  flow:Traffic.Flow.t ->
  frame:int ->
  released:Gmf_util.Timeunit.ns ->
  completed:Gmf_util.Timeunit.ns ->
  unit
(** Records one completed packet.  [tainted] (default false) marks a
    packet whose life overlapped a fault window ({!Gmf_faults.Fault}): it
    counts in {!completed_count} and {!tainted_count} but stays out of
    the response statistics, so sim-vs-analysis cross-checks only assert
    bounds on journeys the faults could not have perturbed.  Raises
    [Invalid_argument] if [completed < released]. *)

val note_released : t -> unit
(** Counts a released packet (matched against completions at the end). *)

val completed_count : t -> int
val released_count : t -> int

val tainted_count : t -> int
(** Completions recorded with [tainted:true] — 0 in fault-free runs. *)

val incomplete : t -> int
(** Packets released but not completed when the simulation ended (in
    flight or dropped — the simulator never drops, so in flight). *)

val responses : t -> flow:Traffic.Flow.id -> frame:int -> Gmf_util.Stats.t option
(** Response-time samples of one (flow, GMF frame) pair; [None] if that
    frame never completed. *)

val record_stage_span :
  t ->
  flow:Traffic.Flow.id ->
  frame:int ->
  stage:stage ->
  span:Gmf_util.Timeunit.ns ->
  unit
(** Records one packet's residence in one pipeline stage (measured by the
    simulator from the instant the whole packet is available at the stage
    until it has wholly left it).  Raises [Invalid_argument] on a negative
    span. *)

val max_stage_span :
  t -> flow:Traffic.Flow.id -> frame:int -> stage:stage ->
  Gmf_util.Timeunit.ns option
(** Largest recorded residence of the (flow, frame) pair in the stage. *)

val stages_seen : t -> flow:Traffic.Flow.id -> frame:int -> stage list
(** The stages with at least one recorded span for the pair. *)

type journey = {
  j_flow : Traffic.Flow.id;
  j_frame : int;
  j_seq : int;  (** Per-flow packet sequence number. *)
  j_events : (Gmf_util.Timeunit.ns * string) list;
      (** Chronological boundary events of the packet's life. *)
  j_tainted : bool;  (** Whether the packet crossed a fault window. *)
}

val record_journey :
  ?tainted:bool ->
  t -> flow:Traffic.Flow.id -> frame:int -> seq:int ->
  events:(Gmf_util.Timeunit.ns * string) list -> unit
(** Store one traced packet's journey (events are sorted on insert).
    Dropped silently — except for {!journey_count} — once the journey cap
    is reached. *)

val journeys : t -> journey list
(** Retained traced journeys, in completion order (at most the cap given
    to {!create}). *)

val journey_count : t -> int
(** Journeys ever recorded, including those dropped by the cap. *)

val max_response : t -> flow:Traffic.Flow.id -> frame:int ->
  Gmf_util.Timeunit.ns option
(** Largest observed response of the pair. *)

val max_response_flow : t -> flow:Traffic.Flow.id -> Gmf_util.Timeunit.ns option
(** Largest observed response over all frames of the flow. *)

val flows_seen : t -> Traffic.Flow.id list
(** Flow ids with at least one completion, ascending. *)
