(** Static schedulability pre-analysis: certified three-valued verdicts
    per flow, before (and often instead of) the holistic fixpoint.

    The pass builds the interference graph ({!Igraph}), then runs the
    necessary and sufficient tests of {!Static_tests} per flow:

    - a {e necessary} test that fails yields [Infeasible cert] — the
      holistic analysis provably rejects the flow (overloaded eq-(20)
      link or eqs-(34)/(35) ingress on its route, or a demand floor above
      a deadline);
    - the {e sufficient} one-shot ceiling, granted only when every flow
      of the interference component passes it, yields [Schedulable cert]
      with per-frame certified bounds — the holistic fixed point provably
      meets every deadline;
    - everything else is [Needs_fixpoint], naming the component to run
      (independently of all other components).

    Verdict lattice and certificate format are documented in
    [docs/PRECHECK.md]. *)

type inequality =
  | Eq20_link_overload of { src : int; dst : int }
  | Eq34_35_ingress_overload of { src : int; node : int }
  | Demand_floor of { frame : int; stage : Stage_key.t }
  | One_shot_bound of { frame : int; stage : Stage_key.t }

type certificate = {
  inequality : inequality;
      (** Which inequality decided, and at which binding node/stage. *)
  value : float;  (** Left side (utilization, or a bound in ns). *)
  limit : float;  (** Right side (1, or the frame's deadline in ns). *)
  slack : float;  (** [limit - value]: negative iff violated. *)
}

type verdict =
  | Infeasible of certificate
  | Schedulable of certificate
  | Needs_fixpoint of { reason : string }

type flow_verdict = {
  flow_id : Traffic.Flow.id;
  flow_name : string;
  component : int;
  verdict : verdict;
  ceilings : Gmf_util.Timeunit.ns array option;
      (** Certified per-frame end-to-end bounds when [Schedulable]. *)
}

type report = {
  stats : Igraph.stats;
  components : Igraph.component list;
  verdicts : flow_verdict list;  (** In flow-id order. *)
}

val run :
  ?exec:Gmf_exec.t -> ?config:Analysis_config.t -> Traffic.Scenario.t -> report
(** Runs the whole pass (no fixpoint; polynomial in flows x route length).
    With [exec], the per-component sufficient-test certification fans out
    over the executor (components are independent); the report is backend
    independent.  Bumps the [precheck.*] counters/gauges and traces a
    [precheck.run] span. *)

val infeasible : report -> flow_verdict list
val certified : report -> flow_verdict list

val decided : report -> int
(** Flows not needing any fixpoint (infeasible + certified). *)

val verdict_of : report -> Traffic.Flow.id -> verdict
(** Raises [Invalid_argument] on an unknown flow id. *)

val undecided_components : report -> Igraph.component list
(** Components holding at least one [Needs_fixpoint] flow, by [cid]. *)

val default_max_component : int
(** Component-size bound above which GMF019 warns (64). *)

val diagnostics : ?max_component:int -> report -> Gmf_diag.t list
(** GMF018 errors for infeasible flows (certificate in the message) and
    GMF019 warnings for components larger than [max_component], sorted by
    code then message. *)

val pp_certificate : Format.formatter -> certificate -> unit
val pp_verdict : Format.formatter -> verdict -> unit

val pp : Format.formatter -> report -> unit
(** Component / verdict / certificate table (the [gmfnet precheck]
    rendering). *)

val to_json : report -> string
(** Deterministic JSON rendering (golden-diffed in CI). *)
