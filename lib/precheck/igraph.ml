type component = { cid : int; flow_ids : Traffic.Flow.id list }

type stats = {
  flows : int;
  edges : int;
  components : int;
  largest : int;
  singletons : int;
  density : float;
}

type t = {
  comps : component list;
  comp_of : (Traffic.Flow.id, int) Hashtbl.t;
  graph_stats : stats;
}

(* Union-find over flow array indices, with path halving. *)
let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    find parent parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let build scenario =
  let flows = Array.of_list (Traffic.Scenario.flows scenario) in
  let nf = Array.length flows in
  let parent = Array.init nf Fun.id in
  (* Index: route node -> indices of the flows crossing it. *)
  let by_node : (Network.Node.id, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i f ->
      List.iter
        (fun node ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_node node) in
          Hashtbl.replace by_node node (i :: prev))
        (Network.Route.nodes f.Traffic.Flow.route))
    flows;
  (* Flows meeting at a node are pairwise adjacent; distinct pairs are
     counted once even when routes share several nodes.  Consecutive nodes
     of a shared path carry the same member list, so identical lists are
     enumerated once; pair keys are packed into one int. *)
  let edge_set = Hashtbl.create 64 in
  let seen_sets = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _node members ->
      match members with
      | [] | [ _ ] -> ()
      | first :: rest ->
          List.iter (fun i -> union parent first i) rest;
          if not (Hashtbl.mem seen_sets members) then begin
            Hashtbl.replace seen_sets members ();
            let rec pairs = function
              | [] -> ()
              | i :: tl ->
                  List.iter
                    (fun j ->
                      Hashtbl.replace edge_set ((min i j * nf) + max i j) ())
                    tl;
                  pairs tl
            in
            pairs members
          end)
    by_node;
  let roots = Hashtbl.create 16 in
  Array.iteri
    (fun i f ->
      let r = find parent i in
      let prev = Option.value ~default:[] (Hashtbl.find_opt roots r) in
      Hashtbl.replace roots r (f.Traffic.Flow.id :: prev))
    flows;
  let comps =
    Hashtbl.fold (fun _root ids acc -> List.sort compare ids :: acc) roots []
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
    |> List.mapi (fun cid flow_ids -> { cid; flow_ids })
  in
  let comp_of = Hashtbl.create nf in
  List.iter
    (fun c -> List.iter (fun id -> Hashtbl.replace comp_of id c.cid) c.flow_ids)
    comps;
  let largest =
    List.fold_left (fun acc c -> max acc (List.length c.flow_ids)) 0 comps
  in
  let singletons =
    List.length (List.filter (fun c -> List.length c.flow_ids = 1) comps)
  in
  let edges = Hashtbl.length edge_set in
  let density =
    if nf < 2 then 0.
    else float_of_int edges /. (float_of_int (nf * (nf - 1)) /. 2.)
  in
  {
    comps;
    comp_of;
    graph_stats =
      {
        flows = nf;
        edges;
        components = List.length comps;
        largest;
        singletons;
        density;
      };
  }

let components t = t.comps

let component_of t id =
  match Hashtbl.find_opt t.comp_of id with
  | Some cid -> cid
  | None -> invalid_arg (Printf.sprintf "Igraph.component_of: unknown flow %d" id)

let stats t = t.graph_stats

let pp_stats fmt s =
  Format.fprintf fmt
    "%d flows, %d edges, %d components (largest %d, %d singletons), density \
     %.3f"
    s.flows s.edges s.components s.largest s.singletons s.density
