(** The three per-hop analysis stages of a flow's route (paper Section 3).

    This type used to live in the [analysis] library; it moved below it so
    the static pre-analysis ([Gmf_precheck]) and the fixpoint share one
    stage vocabulary.  [Analysis.Stage] re-exports the constructors, so
    analysis-side code is unchanged. *)

type t =
  | First_link of Network.Node.id * Network.Node.id
      (** The source host's link (eq 16). *)
  | Ingress of Network.Node.id  (** The ingress task of a switch (eq 23). *)
  | Egress of Network.Node.id * Network.Node.id
      (** The egress queue of a switch towards [dst] (eq 30). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val stages_of_route : Network.Route.t -> t list
(** First link, then [Ingress n; Egress (n, succ n)] per intermediate
    switch, in route order. *)

val pp : Format.formatter -> t -> unit
