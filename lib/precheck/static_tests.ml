(* Guard margin for the float comparisons of the sufficient test: the
   holistic analysis is integer-exact, the closed forms are real-valued,
   so every "< 1" and "<= horizon" check keeps a safety margin. *)
let eps = 1e-9

(* ---------------- stage utilizations ---------------- *)

let link_utilization scenario ~src ~dst =
  Traffic.Scenario.link_utilization scenario ~src ~dst

(* Left side of eqs (34)-(35) for one ingress link (src -> switch): every
   Ethernet frame entering the switch there costs one CIRC rotation. *)
let ingress_utilization scenario ~src ~node =
  let circ = Traffic.Scenario.circ scenario node in
  List.fold_left
    (fun acc f ->
      let p = Traffic.Scenario.params scenario f ~src ~dst:node in
      acc
      +. float_of_int (Traffic.Link_params.nsum p * circ)
         /. float_of_int (Traffic.Flow.tsum f))
    0.
    (Traffic.Scenario.flows_on scenario ~src ~dst:node)

let egress_utilization scenario (flow : Traffic.Flow.t) ~node =
  let dst = Network.Route.succ flow.Traffic.Flow.route node in
  flow :: Traffic.Scenario.hep scenario flow ~node
  |> List.fold_left
       (fun acc j ->
         acc
         +. Traffic.Link_params.utilization
              (Traffic.Scenario.params scenario j ~src:node ~dst))
       0.

let stage_utilization scenario (flow : Traffic.Flow.t) = function
  | Stage_key.First_link (src, dst) -> link_utilization scenario ~src ~dst
  | Stage_key.Ingress node ->
      let src = Network.Route.prec flow.Traffic.Flow.route node in
      ingress_utilization scenario ~src ~node
  | Stage_key.Egress (node, _) -> egress_utilization scenario flow ~node

(* ---------------- uncontended floor (GMF202) ---------------- *)

(* GJ + the sum of per-stage response-time lower bounds of Figure 6: own
   transmission + propagation on every link stage, own rotations at every
   ingress stage.  Mirrors [Analysis.Pipeline.stage_min_response]. *)
let min_response scenario (f : Traffic.Flow.t) ~frame =
  let route = f.Traffic.Flow.route in
  let links =
    List.fold_left
      (fun acc (src, dst) ->
        let p = Traffic.Scenario.params scenario f ~src ~dst in
        acc
        + p.Traffic.Link_params.c.(frame)
        + p.Traffic.Link_params.link.Network.Link.prop)
      0 (Network.Route.hops route)
  in
  let ingresses =
    List.fold_left
      (fun acc node ->
        let src = Network.Route.prec route node in
        let p = Traffic.Scenario.params scenario f ~src ~dst:node in
        let model = Traffic.Scenario.switch_model scenario node in
        acc
        + p.Traffic.Link_params.eth_frames.(frame)
          * model.Click.Switch_model.croute)
      0
      (Network.Route.intermediate_switches route)
  in
  let gj = (Gmf.Spec.frame f.Traffic.Flow.spec frame).Gmf.Frame_spec.jitter in
  gj + links + ingresses

(* ---------------- shared demand helpers ---------------- *)

let mx ~capped scenario j ~src ~dst ~dt =
  Gmf.Demand.bound
    (Traffic.Link_params.time_demand
       (Traffic.Scenario.params scenario j ~src ~dst))
    ~capped dt

let nx scenario j ~src ~dst ~dt =
  Gmf.Demand.bound
    (Traffic.Link_params.count_demand
       (Traffic.Scenario.params scenario j ~src ~dst))
    ~capped:false dt

let others_on scenario (flow : Traffic.Flow.t) ~src ~dst =
  Traffic.Scenario.flows_on scenario ~src ~dst
  |> List.filter (fun (j : Traffic.Flow.t) ->
         j.Traffic.Flow.id <> flow.Traffic.Flow.id)

(* ---------------- necessary demand floor ---------------- *)

(* One application of each stage's exact recurrence at (q = 0, l = 0) from
   the bottom jitter state.  At first links every interferer's jitter is
   its source jitter (first-link jitters never change — endhosts do not
   relay, so flows sharing a first link share the stage key); everywhere
   else the bottom jitter is 0.  Converged stage windows dominate one
   application of their own step function, and the scan of Stage_common
   includes (0, 0), so each term bounds the real stage response from
   below for {e any} reachable jitter state. *)
let demand_floor ~config scenario (flow : Traffic.Flow.t) ~frame =
  let variant = config.Analysis_config.variant in
  let capped = variant = Analysis_config.Faithful in
  let route = flow.Traffic.Flow.route in
  let floor_of = function
    | Stage_key.First_link (src, dst) as stage ->
        let own = Traffic.Scenario.params scenario flow ~src ~dst in
        let c_k = own.Traffic.Link_params.c.(frame) in
        let prop = own.Traffic.Link_params.link.Network.Link.prop in
        let interference =
          List.fold_left
            (fun acc (j : Traffic.Flow.t) ->
              acc
              + mx ~capped scenario j ~src ~dst
                  ~dt:(Gmf.Spec.max_jitter j.Traffic.Flow.spec))
            0
            (others_on scenario flow ~src ~dst)
        in
        (stage, c_k + prop + interference)
    | Stage_key.Ingress node as stage ->
        let src = Network.Route.prec route node in
        let circ = Traffic.Scenario.circ scenario node in
        let own = Traffic.Scenario.params scenario flow ~src ~dst:node in
        let m_k = own.Traffic.Link_params.eth_frames.(frame) in
        let own_charge =
          match variant with
          | Analysis_config.Faithful -> 0
          | Analysis_config.Repaired -> (m_k - 1) * circ
        in
        let interference =
          List.fold_left
            (fun acc j -> acc + nx scenario j ~src ~dst:node ~dt:0)
            0
            (others_on scenario flow ~src ~dst:node)
        in
        (stage, own_charge + (interference * circ) + circ)
    | Stage_key.Egress (node, dst) as stage ->
        let circ = Traffic.Scenario.circ scenario node in
        let own = Traffic.Scenario.params scenario flow ~src:node ~dst in
        let c_k = own.Traffic.Link_params.c.(frame) in
        let m_k = own.Traffic.Link_params.eth_frames.(frame) in
        let mft = Traffic.Link_params.mft own in
        let prop = own.Traffic.Link_params.link.Network.Link.prop in
        let own_rotations =
          match variant with
          | Analysis_config.Faithful -> 0
          | Analysis_config.Repaired -> m_k * circ
        in
        let interference =
          List.fold_left
            (fun acc j ->
              acc
              + mx ~capped scenario j ~src:node ~dst ~dt:0
              + (nx scenario j ~src:node ~dst ~dt:0 * circ))
            0
            (Traffic.Scenario.hep scenario flow ~node)
        in
        (stage, mft + own_rotations + interference + c_k + prop)
  in
  let per_stage = List.map floor_of (Stage_key.stages_of_route route) in
  let gj =
    (Gmf.Spec.frame flow.Traffic.Flow.spec frame).Gmf.Frame_spec.jitter
  in
  let total = List.fold_left (fun acc (_, v) -> acc + v) gj per_stage in
  (total, per_stage)

(* ---------------- sufficient response ceiling ---------------- *)

type ceiling = {
  totals : float array;
  binding_frame : int;
  binding_stage : Stage_key.t;
  slack : float;
  max_util : float;
}

(* Per-interferer linear majorant at one stage: cost m per cycle TSUM,
   jitter capped at ebar, so its demand over a window w is at most
   m * (1 + (w + ebar)/TSUM) = sigma + rho * w (the window cost of
   eqs (10)/(12) never exceeds the cycle total). *)
type majorant = { sigma : float; rho : float }

let majorant ~m ~tsum ~ebar =
  let m = float_of_int m and tsum = float_of_int tsum in
  { sigma = m *. (1. +. (ebar /. tsum)); rho = m /. tsum }

let sum_majorants l =
  List.fold_left (fun (a, u) mj -> (a +. mj.sigma, u +. mj.rho)) (0., 0.) l

(* Jitter cap of an interferer away from its first link: once every flow
   of the component meets its deadlines, any accumulated jitter stays
   below the frame's end-to-end bound, itself below the largest deadline.
   The source jitter is folded in to also dominate states below the
   fixpoint. *)
let deadline_cap (j : Traffic.Flow.t) =
  let spec = j.Traffic.Flow.spec in
  let dmax = Array.fold_left max 0 (Gmf.Spec.deadlines spec) in
  float_of_int (max dmax (Gmf.Spec.max_jitter spec))

let window_before arr ~k ~len =
  let n = Array.length arr in
  let rec go i acc =
    if i >= len then acc
    else go (i + 1) (acc + arr.((((k - 1 - i) mod n) + n) mod n))
  in
  go 0 0

(* Everything the closed form needs about one stage of the analyzed flow:
   the interferer majorants, the self terms of the (q, l) scan, and the
   busy-period constants.  [sf_pre]/[sf_pre_t] pair the own carry-in cost
   of l predecessor frames with their minimum separation, flattened over
   every (frame, l) combination of the Repaired scan. *)
type stage_form = {
  sf_interf : majorant list;  (* the w-window interference set *)
  sf_self_m : int;  (* own per-cycle stage cost (busy-period slope) *)
  sf_self_ebar : float;  (* own jitter cap (busy-period interference) *)
  sf_gq : int;  (* own per-cycle w-base increment (q scan) *)
  sf_pre : int array;
  sf_pre_t : int array;
  sf_base0 : int array;  (* per-frame w-base at q = 0, l = 0 *)
  sf_busy_const : int;  (* additive constant of the busy recurrence *)
  sf_seed : int array;  (* per-frame busy seeds (horizon guard) *)
  sf_tail : int array;  (* per-frame finish terms added after w *)
}

(* Flatten window_before over every (k, l) pair of the Repaired scan,
   keeping cost and separation arrays index-aligned. *)
let carry_ins ~repaired ~n cost_arr sep_arr =
  if not repaired then ([| 0 |], [| 0 |])
  else begin
    let costs = Array.make (n * n) 0 and seps = Array.make (n * n) 0 in
    for k = 0 to n - 1 do
      for l = 0 to n - 1 do
        costs.((k * n) + l) <- window_before cost_arr ~k ~len:l;
        seps.((k * n) + l) <- window_before sep_arr ~k ~len:l
      done
    done;
    (costs, seps)
  end

let stage_form ~config scenario (flow : Traffic.Flow.t) stage =
  let variant = config.Analysis_config.variant in
  let repaired = variant = Analysis_config.Repaired in
  let route = flow.Traffic.Flow.route in
  let spec = flow.Traffic.Flow.spec in
  let n = Gmf.Spec.n spec in
  let periods = Gmf.Spec.periods spec in
  match stage with
  | Stage_key.First_link (src, dst) ->
      let own = Traffic.Scenario.params scenario flow ~src ~dst in
      let csum = Traffic.Link_params.csum own in
      let prop = own.Traffic.Link_params.link.Network.Link.prop in
      let interf =
        List.map
          (fun (j : Traffic.Flow.t) ->
            let p = Traffic.Scenario.params scenario j ~src ~dst in
            majorant
              ~m:(Traffic.Link_params.csum p)
              ~tsum:(Traffic.Flow.tsum j)
              (* First-link jitters are frozen source jitters. *)
              ~ebar:(float_of_int (Gmf.Spec.max_jitter j.Traffic.Flow.spec)))
          (others_on scenario flow ~src ~dst)
      in
      let pre, pre_t =
        carry_ins ~repaired ~n own.Traffic.Link_params.c periods
      in
      {
        sf_interf = interf;
        sf_self_m = csum;
        sf_self_ebar = float_of_int (Gmf.Spec.max_jitter spec);
        sf_gq = csum;
        sf_pre = pre;
        sf_pre_t = pre_t;
        sf_base0 = Array.make n 0;
        sf_busy_const = 0;
        sf_seed = Array.copy own.Traffic.Link_params.c;
        sf_tail = Array.init n (fun k -> own.Traffic.Link_params.c.(k) + prop);
      }
  | Stage_key.Ingress node ->
      let src = Network.Route.prec route node in
      let circ = Traffic.Scenario.circ scenario node in
      let own = Traffic.Scenario.params scenario flow ~src ~dst:node in
      let nsum = Traffic.Link_params.nsum own in
      let interf =
        List.map
          (fun (j : Traffic.Flow.t) ->
            let p = Traffic.Scenario.params scenario j ~src ~dst:node in
            majorant
              ~m:(Traffic.Link_params.nsum p * circ)
              ~tsum:(Traffic.Flow.tsum j)
              ~ebar:(deadline_cap j))
          (others_on scenario flow ~src ~dst:node)
      in
      let m_of k = own.Traffic.Link_params.eth_frames.(k) in
      let rot_cost =
        Array.map (fun m -> m * circ) own.Traffic.Link_params.eth_frames
      in
      let pre, pre_t = carry_ins ~repaired ~n rot_cost periods in
      {
        sf_interf = interf;
        sf_self_m = nsum * circ;
        sf_self_ebar = deadline_cap flow;
        sf_gq = (if repaired then nsum * circ else circ);
        sf_pre = pre;
        sf_pre_t = pre_t;
        sf_base0 =
          Array.init n (fun k -> if repaired then (m_of k - 1) * circ else 0);
        sf_busy_const = 0;
        sf_seed =
          Array.init n (fun k -> if repaired then m_of k * circ else circ);
        sf_tail = Array.make n circ;
      }
  | Stage_key.Egress (node, dst) ->
      let circ = Traffic.Scenario.circ scenario node in
      let own = Traffic.Scenario.params scenario flow ~src:node ~dst in
      let csum = Traffic.Link_params.csum own in
      let nsum = Traffic.Link_params.nsum own in
      let mft = Traffic.Link_params.mft own in
      let prop = own.Traffic.Link_params.link.Network.Link.prop in
      let interf =
        List.map
          (fun (j : Traffic.Flow.t) ->
            let p = Traffic.Scenario.params scenario j ~src:node ~dst in
            majorant
              ~m:
                (Traffic.Link_params.csum p
                + (Traffic.Link_params.nsum p * circ))
              ~tsum:(Traffic.Flow.tsum j)
              ~ebar:(deadline_cap j))
          (Traffic.Scenario.hep scenario flow ~node)
      in
      let m_of k = own.Traffic.Link_params.eth_frames.(k) in
      let pre_cost =
        Array.init n (fun k ->
            own.Traffic.Link_params.c.(k)
            + if repaired then m_of k * circ else 0)
      in
      let pre, pre_t = carry_ins ~repaired ~n pre_cost periods in
      {
        sf_interf = interf;
        sf_self_m = csum + (nsum * circ);
        sf_self_ebar = deadline_cap flow;
        sf_gq = (if repaired then csum + (nsum * circ) else csum);
        sf_pre = pre;
        sf_pre_t = pre_t;
        sf_base0 =
          Array.init n (fun k -> mft + if repaired then m_of k * circ else 0);
        sf_busy_const = mft;
        sf_seed = Array.make n mft;
        sf_tail = Array.init n (fun k -> own.Traffic.Link_params.c.(k) + prop);
      }

(* Closed-form per-frame ceiling of one stage, or the violated guard. *)
let stage_ceiling ~config scenario flow stage =
  let sf = stage_form ~config scenario flow stage in
  let tsum_i = float_of_int (Traffic.Flow.tsum flow) in
  let a, u = sum_majorants sf.sf_interf in
  let self =
    majorant ~m:sf.sf_self_m ~tsum:(Traffic.Flow.tsum flow)
      ~ebar:sf.sf_self_ebar
  in
  let u_all = u +. self.rho in
  let stage_str = Format.asprintf "%a" Stage_key.pp stage in
  if u_all >= 1. -. eps then
    Error
      (Printf.sprintf "stage %s: utilization %.3f leaves no slack" stage_str
         u_all)
  else begin
    let a_all = a +. self.sigma in
    let horizon = float_of_int config.Analysis_config.horizon in
    (* Busy-period bound: any fixed point of t = const + I_all(t) obeys
       t <= (const + A_all) / (1 - U_all). *)
    let busy_bar =
      (float_of_int sf.sf_busy_const +. a_all) /. (1. -. u_all)
    in
    let q_bar = Float.max 1. (Float.ceil (busy_bar /. tsum_i)) in
    (* Carry-in slack: the l-scan adds own predecessor cost inside the
       window but subtracts only their minimum separations. *)
    let lslack =
      let best = ref 0. in
      Array.iteri
        (fun idx pre ->
          let v =
            (float_of_int pre /. (1. -. u)) -. float_of_int sf.sf_pre_t.(idx)
          in
          if v > !best then best := v)
        sf.sf_pre;
      !best
    in
    let n = Array.length sf.sf_base0 in
    let base0_max = Array.fold_left max 0 sf.sf_base0 |> float_of_int in
    let pre_max = Array.fold_left max 0 sf.sf_pre |> float_of_int in
    let seed_max = Array.fold_left max 0 sf.sf_seed |> float_of_int in
    let w_bar =
      (base0_max +. ((q_bar -. 1.) *. float_of_int sf.sf_gq) +. pre_max +. a)
      /. (1. -. u)
    in
    if q_bar > float_of_int config.Analysis_config.max_q then
      Error
        (Printf.sprintf "stage %s: busy-period bound needs Q=%.0f > max_q %d"
           stage_str q_bar config.Analysis_config.max_q)
    else if Float.max busy_bar (Float.max w_bar seed_max) > horizon -. 1. then
      Error
        (Printf.sprintf "stage %s: window bound exceeds the horizon" stage_str)
    else begin
      (* q = 0 dominates the scan: gq/(1-U) <= TSUM_i follows from
         U + self.rho < 1 and gq <= self_m. *)
      let rbar =
        Array.init n (fun k ->
            ((float_of_int sf.sf_base0.(k) +. a) /. (1. -. u))
            +. lslack
            +. float_of_int sf.sf_tail.(k))
      in
      Ok (rbar, u_all)
    end
  end

let response_ceiling ~config scenario (flow : Traffic.Flow.t) =
  let spec = flow.Traffic.Flow.spec in
  let n = Gmf.Spec.n spec in
  let stages = Stage_key.stages_of_route flow.Traffic.Flow.route in
  let rec collect acc max_u = function
    | [] -> Ok (List.rev acc, max_u)
    | stage :: rest -> (
        match stage_ceiling ~config scenario flow stage with
        | Error e -> Error e
        | Ok (rbar, u_all) ->
            collect ((stage, rbar) :: acc) (Float.max max_u u_all) rest)
  in
  match collect [] 0. stages with
  | Error e -> Error e
  | Ok (per_stage, max_util) ->
      let jitters = Gmf.Spec.jitters spec in
      let deadlines = Gmf.Spec.deadlines spec in
      let totals =
        Array.init n (fun k ->
            List.fold_left
              (fun acc (_, rbar) -> acc +. rbar.(k))
              (float_of_int jitters.(k))
              per_stage)
      in
      let binding_frame = ref 0 and best_slack = ref infinity in
      Array.iteri
        (fun k total ->
          let slack = float_of_int deadlines.(k) -. total in
          if slack < !best_slack then begin
            best_slack := slack;
            binding_frame := k
          end)
        totals;
      let binding_stage =
        List.fold_left
          (fun (bs, bv) (stage, rbar) ->
            if rbar.(!binding_frame) > bv then (stage, rbar.(!binding_frame))
            else (bs, bv))
          (List.hd stages, neg_infinity)
          per_stage
        |> fst
      in
      Ok
        {
          totals;
          binding_frame = !binding_frame;
          binding_stage;
          slack = !best_slack;
          max_util;
        }

let certifies (flow : Traffic.Flow.t) ceiling =
  let deadlines = Gmf.Spec.deadlines flow.Traffic.Flow.spec in
  let ok = ref true in
  Array.iteri
    (fun k total ->
      if Float.ceil total > float_of_int deadlines.(k) then ok := false)
    ceiling.totals;
  !ok
