type t =
  | First_link of Network.Node.id * Network.Node.id
  | Ingress of Network.Node.id
  | Egress of Network.Node.id * Network.Node.id

let equal a b = a = b
let compare = Stdlib.compare
let hash = Hashtbl.hash

let stages_of_route route =
  let source = Network.Route.source route in
  let first = First_link (source, Network.Route.succ route source) in
  let per_switch n =
    [ Ingress n; Egress (n, Network.Route.succ route n) ]
  in
  first
  :: List.concat_map per_switch (Network.Route.intermediate_switches route)

let pp fmt = function
  | First_link (s, d) -> Format.fprintf fmt "first(%d->%d)" s d
  | Ingress n -> Format.fprintf fmt "in(%d)" n
  | Egress (n, d) -> Format.fprintf fmt "out(%d->%d)" n d
