(** The interference graph over a scenario's flows.

    Two flows interact — directly or through jitter propagation — only if
    their routes share a node: every interference set the analysis reads
    ([flows_on], [hep]) is drawn from the flows crossing one node, and
    jitter only travels along a flow's own route.  Flows in different
    connected components of this graph therefore have completely
    independent fixed points, which is what lets the holistic analysis be
    sharded per component (see [Analysis.Sharded]) and what the closure
    machinery in [Gmf_admctl.Session] exploits event by event. *)

type component = {
  cid : int;  (** 0-based, ordered by smallest member flow id. *)
  flow_ids : Traffic.Flow.id list;  (** Ascending. *)
}

type stats = {
  flows : int;
  edges : int;  (** Distinct flow pairs sharing at least one route node. *)
  components : int;
  largest : int;  (** Flow count of the biggest component; 0 when empty. *)
  singletons : int;  (** Components of exactly one flow. *)
  density : float;
      (** [edges / (flows choose 2)]; 0 for fewer than two flows. *)
}

type t

val build : Traffic.Scenario.t -> t

val components : t -> component list

val component_of : t -> Traffic.Flow.id -> int
(** Raises [Invalid_argument] on a flow id not in the scenario. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
