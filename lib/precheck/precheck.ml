type inequality =
  | Eq20_link_overload of { src : int; dst : int }
  | Eq34_35_ingress_overload of { src : int; node : int }
  | Demand_floor of { frame : int; stage : Stage_key.t }
  | One_shot_bound of { frame : int; stage : Stage_key.t }

type certificate = {
  inequality : inequality;
  value : float;
  limit : float;
  slack : float;
}

type verdict =
  | Infeasible of certificate
  | Schedulable of certificate
  | Needs_fixpoint of { reason : string }

type flow_verdict = {
  flow_id : Traffic.Flow.id;
  flow_name : string;
  component : int;
  verdict : verdict;
  ceilings : Gmf_util.Timeunit.ns array option;
}

type report = {
  stats : Igraph.stats;
  components : Igraph.component list;
  verdicts : flow_verdict list;
}

(* ---------------- observability ---------------- *)

let m_runs = Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "precheck.runs"

let m_components =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "precheck.components"

let m_decided =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "precheck.decided"

let m_infeasible =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "precheck.infeasible"

let m_certified =
  Gmf_obs.Metrics.counter Gmf_obs.Metrics.default "precheck.certified"

let g_largest =
  Gmf_obs.Metrics.gauge Gmf_obs.Metrics.default "precheck.largest_component"

(* ---------------- necessary tests per flow ---------------- *)

(* Mirrors the predicate (and float arithmetic) of the lint gate
   [Gmf_lint.Rules.flow_gate], so the two layers can never disagree on an
   eq-(20)/(34)-(35) overload. *)
let overload_certificate ~config scenario (flow : Traffic.Flow.t) =
  let route = flow.Traffic.Flow.route in
  let worst cmp l = match l with [] -> None | hd :: tl ->
    Some (List.fold_left (fun acc c -> if cmp c acc then c else acc) hd tl)
  in
  let links =
    List.filter_map
      (fun (src, dst) ->
        let u = Static_tests.link_utilization scenario ~src ~dst in
        if u >= 1. then
          Some
            {
              inequality = Eq20_link_overload { src; dst };
              value = u;
              limit = 1.;
              slack = 1. -. u;
            }
        else None)
      (Network.Route.hops route)
  in
  let ingresses =
    List.filter_map
      (fun node ->
        let src = Network.Route.prec route node in
        let u = Static_tests.ingress_utilization scenario ~src ~node in
        if u >= 1. then
          Some
            {
              inequality = Eq34_35_ingress_overload { src; node };
              value = u;
              limit = 1.;
              slack = 1. -. u;
            }
        else None)
      (Network.Route.intermediate_switches route)
  in
  let floors =
    List.filter_map
      (fun frame ->
        let deadline =
          (Gmf.Spec.frame flow.Traffic.Flow.spec frame).Gmf.Frame_spec.deadline
        in
        let total, per_stage =
          Static_tests.demand_floor ~config scenario flow ~frame
        in
        if total > deadline then
          let binding, _ =
            List.fold_left
              (fun (bs, bv) (stage, v) ->
                if v > bv then (stage, v) else (bs, bv))
              (fst (List.hd per_stage), min_int)
              per_stage
          in
          Some
            {
              inequality = Demand_floor { frame; stage = binding };
              value = float_of_int total;
              limit = float_of_int deadline;
              slack = float_of_int (deadline - total);
            }
        else None)
      (List.init (Traffic.Flow.n flow) Fun.id)
  in
  match worst (fun a b -> a.value > b.value) links with
  | Some c -> Some c
  | None -> (
      match worst (fun a b -> a.value > b.value) ingresses with
      | Some c -> Some c
      | None -> worst (fun a b -> a.slack < b.slack) floors)

(* ---------------- the pass ---------------- *)

let run ?exec ?(config = Analysis_config.default) scenario =
  Gmf_obs.Tracer.with_span Gmf_obs.Tracer.default ~cat:"precheck"
    "precheck.run"
  @@ fun () ->
  let graph = Igraph.build scenario in
  let components = Igraph.components graph in
  let stats = Igraph.stats graph in
  let flows = Traffic.Scenario.flows scenario in
  let infeasible_certs = Hashtbl.create 8 in
  List.iter
    (fun (f : Traffic.Flow.t) ->
      match overload_certificate ~config scenario f with
      | Some cert -> Hashtbl.replace infeasible_certs f.Traffic.Flow.id cert
      | None -> ())
    flows;
  (* Sufficient test, all-or-nothing per component: the jitter caps of
     the ceilings are only invariant when every member meets them.
     Components are independent, so with an executor the certification
     fans out over the pool; outcomes come back in component order, so
     the report is backend independent. *)
  let certify_component (c : Igraph.component) =
    let members =
      List.map (fun id -> Traffic.Scenario.flow scenario id) c.Igraph.flow_ids
    in
    if
      List.exists
        (fun (f : Traffic.Flow.t) ->
          Hashtbl.mem infeasible_certs f.Traffic.Flow.id)
        members
    then Error "component holds a statically infeasible flow"
    else
      let rec certify acc = function
        | [] -> Ok (List.rev acc)
        | (f : Traffic.Flow.t) :: rest -> (
            match Static_tests.response_ceiling ~config scenario f with
            | Error e ->
                Error (Printf.sprintf "flow %s: %s" f.Traffic.Flow.name e)
            | Ok ceiling when not (Static_tests.certifies f ceiling) ->
                Error
                  (Printf.sprintf
                     "flow %s: frame %d one-shot bound misses its \
                      deadline by %.0f ns"
                     f.Traffic.Flow.name
                     ceiling.Static_tests.binding_frame
                     (-.ceiling.Static_tests.slack))
            | Ok ceiling -> certify ((f.Traffic.Flow.id, ceiling) :: acc) rest)
      in
      certify [] members
  in
  let outcomes =
    match exec with
    | None -> List.map certify_component components
    | Some exec ->
        Gmf_exec.map_cases ~exec ~f:certify_component components
        |> List.map (function
             | Ok outcome -> outcome
             | Error e -> Error ("exec: " ^ Gmf_exec.error_to_string e))
  in
  let component_outcome = Hashtbl.create 8 in
  List.iter2
    (fun (c : Igraph.component) outcome ->
      Hashtbl.replace component_outcome c.Igraph.cid outcome)
    components outcomes;
  let verdicts =
    List.map
      (fun (f : Traffic.Flow.t) ->
        let id = f.Traffic.Flow.id in
        let component = Igraph.component_of graph id in
        let verdict, ceilings =
          match Hashtbl.find_opt infeasible_certs id with
          | Some cert -> (Infeasible cert, None)
          | None -> (
              match Hashtbl.find component_outcome component with
              | Error reason -> (Needs_fixpoint { reason }, None)
              | Ok certified -> (
                  match
                    List.find_opt (fun (gid, _) -> gid = id) certified
                  with
                  | None -> (Needs_fixpoint { reason = "uncertified" }, None)
                  | Some (_, ceiling) ->
                      let deadlines = Gmf.Spec.deadlines f.Traffic.Flow.spec in
                      let k = ceiling.Static_tests.binding_frame in
                      let cert =
                        {
                          inequality =
                            One_shot_bound
                              {
                                frame = k;
                                stage = ceiling.Static_tests.binding_stage;
                              };
                          value = Float.ceil ceiling.Static_tests.totals.(k);
                          limit = float_of_int deadlines.(k);
                          slack =
                            float_of_int deadlines.(k)
                            -. Float.ceil ceiling.Static_tests.totals.(k);
                        }
                      in
                      let bounds =
                        Array.map
                          (fun t -> int_of_float (Float.ceil t))
                          ceiling.Static_tests.totals
                      in
                      (Schedulable cert, Some bounds)))
        in
        { flow_id = id; flow_name = f.Traffic.Flow.name; component; verdict;
          ceilings })
      flows
  in
  let n_inf =
    List.length
      (List.filter (fun v -> match v.verdict with Infeasible _ -> true | _ -> false) verdicts)
  in
  let n_cert =
    List.length
      (List.filter
         (fun v -> match v.verdict with Schedulable _ -> true | _ -> false)
         verdicts)
  in
  if Gmf_obs.Metrics.enabled Gmf_obs.Metrics.default then begin
    Gmf_obs.Metrics.incr m_runs;
    Gmf_obs.Metrics.incr ~by:stats.Igraph.components m_components;
    Gmf_obs.Metrics.incr ~by:(n_inf + n_cert) m_decided;
    Gmf_obs.Metrics.incr ~by:n_inf m_infeasible;
    Gmf_obs.Metrics.incr ~by:n_cert m_certified;
    Gmf_obs.Metrics.set_gauge g_largest (float_of_int stats.Igraph.largest)
  end;
  { stats; components; verdicts }

(* ---------------- accessors ---------------- *)

let infeasible report =
  List.filter
    (fun v -> match v.verdict with Infeasible _ -> true | _ -> false)
    report.verdicts

let certified report =
  List.filter
    (fun v -> match v.verdict with Schedulable _ -> true | _ -> false)
    report.verdicts

let decided report = List.length (infeasible report) + List.length (certified report)

let verdict_of report id =
  match List.find_opt (fun v -> v.flow_id = id) report.verdicts with
  | Some v -> v.verdict
  | None -> invalid_arg (Printf.sprintf "Precheck.verdict_of: unknown flow %d" id)

let undecided_components report =
  let undecided = Hashtbl.create 16 in
  List.iter
    (fun v ->
      match v.verdict with
      | Needs_fixpoint _ -> Hashtbl.replace undecided v.component ()
      | _ -> ())
    report.verdicts;
  List.filter
    (fun (c : Igraph.component) -> Hashtbl.mem undecided c.Igraph.cid)
    report.components

(* ---------------- diagnostics ---------------- *)

let default_max_component = 64

let inequality_name = function
  | Eq20_link_overload _ -> "eq20-link-overload"
  | Eq34_35_ingress_overload _ -> "eq34-35-ingress-overload"
  | Demand_floor _ -> "demand-floor"
  | One_shot_bound _ -> "one-shot-bound"

let pp_certificate fmt c =
  match c.inequality with
  | Eq20_link_overload { src; dst } ->
      Format.fprintf fmt
        "eq (20) on link %d->%d: utilization %.3f >= 1 (slack %.3f)" src dst
        c.value c.slack
  | Eq34_35_ingress_overload { src; node } ->
      Format.fprintf fmt
        "eqs (34)-(35) at node %d via link %d->%d: rotation utilization %.3f \
         >= 1 (slack %.3f)"
        node src node c.value c.slack
  | Demand_floor { frame; stage } ->
      Format.fprintf fmt
        "demand floor of frame %d: %.0f ns > deadline %.0f ns (binding %a, \
         slack %.0f ns)"
        frame c.value c.limit Stage_key.pp stage c.slack
  | One_shot_bound { frame; stage } ->
      Format.fprintf fmt
        "one-shot bound of frame %d: %.0f ns <= deadline %.0f ns (binding \
         %a, slack %.0f ns)"
        frame c.value c.limit Stage_key.pp stage c.slack

let pp_verdict fmt = function
  | Infeasible c ->
      Format.fprintf fmt "infeasible (%a)" pp_certificate c
  | Schedulable c ->
      Format.fprintf fmt "schedulable (%a)" pp_certificate c
  | Needs_fixpoint { reason } ->
      Format.fprintf fmt "needs-fixpoint (%s)" reason

let by_code_then_message (a : Gmf_diag.t) (b : Gmf_diag.t) =
  compare (a.Gmf_diag.code, a.Gmf_diag.message)
    (b.Gmf_diag.code, b.Gmf_diag.message)

let diagnostics ?(max_component = default_max_component) report =
  let gmf018 =
    List.map
      (fun v ->
        match v.verdict with
        | Infeasible cert ->
            let subject =
              match cert.inequality with
              | Demand_floor { frame; _ } ->
                  Gmf_diag.Frame
                    { id = v.flow_id; name = v.flow_name; frame }
              | _ -> Gmf_diag.Flow { id = v.flow_id; name = v.flow_name }
            in
            Gmf_diag.error ~code:"GMF018" ~subject
              ~suggestion:
                "the holistic analysis cannot admit this flow; shed it, \
                 reroute it or relax the violated constraint"
              "statically infeasible: %s"
              (Format.asprintf "%a" pp_certificate cert)
        | _ -> assert false)
      (infeasible report)
  in
  let gmf019 =
    List.filter_map
      (fun (c : Igraph.component) ->
        let size = List.length c.Igraph.flow_ids in
        if size > max_component then
          Some
            (Gmf_diag.warning ~code:"GMF019" ~subject:Gmf_diag.Scenario
               ~suggestion:
                 "the fixpoint on this component may dominate analysis \
                  time; reduce route sharing or raise the bound"
               "interference component %d spans %d flows (bound %d)"
               c.Igraph.cid size max_component)
        else None)
      report.components
  in
  List.sort by_code_then_message (gmf018 @ gmf019)

(* ---------------- rendering ---------------- *)

let pp fmt report =
  Format.fprintf fmt "interference graph: %a@," Igraph.pp_stats report.stats;
  List.iter
    (fun (c : Igraph.component) ->
      Format.fprintf fmt "component %d (%d flows):@," c.Igraph.cid
        (List.length c.Igraph.flow_ids);
      List.iter
        (fun v ->
          if v.component = c.Igraph.cid then
            Format.fprintf fmt "  flow %d %s: %a@," v.flow_id v.flow_name
              pp_verdict v.verdict)
        report.verdicts)
    report.components;
  Format.fprintf fmt "decided statically: %d/%d (%d infeasible, %d certified)"
    (decided report) report.stats.Igraph.flows
    (List.length (infeasible report))
    (List.length (certified report))

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json report =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let s = report.stats in
  add "{\n";
  add
    "  \"stats\": {\"flows\": %d, \"edges\": %d, \"components\": %d, \
     \"largest\": %d, \"singletons\": %d, \"density\": %.4f},\n"
    s.Igraph.flows s.Igraph.edges s.Igraph.components s.Igraph.largest
    s.Igraph.singletons s.Igraph.density;
  add "  \"components\": [";
  List.iteri
    (fun i (c : Igraph.component) ->
      if i > 0 then add ", ";
      add "{\"cid\": %d, \"flows\": [%s]}" c.Igraph.cid
        (String.concat ", " (List.map string_of_int c.Igraph.flow_ids)))
    report.components;
  add "],\n";
  add "  \"verdicts\": [\n";
  List.iteri
    (fun i v ->
      if i > 0 then add ",\n";
      add "    {\"flow\": %d, \"name\": \"%s\", \"component\": %d, " v.flow_id
        (json_escape v.flow_name) v.component;
      (match v.verdict with
      | Needs_fixpoint { reason } ->
          add "\"verdict\": \"needs-fixpoint\", \"reason\": \"%s\"}"
            (json_escape reason)
      | (Infeasible cert | Schedulable cert) as verdict ->
          add "\"verdict\": \"%s\", "
            (match verdict with
            | Infeasible _ -> "infeasible"
            | _ -> "schedulable");
          add
            "\"certificate\": {\"inequality\": \"%s\", \"value\": %.3f, \
             \"limit\": %.3f, \"slack\": %.3f, \"detail\": \"%s\"}"
            (inequality_name cert.inequality)
            cert.value cert.limit cert.slack
            (json_escape (Format.asprintf "%a" pp_certificate cert));
          (match v.ceilings with
          | Some bounds ->
              add ", \"ceilings\": [%s]}"
                (String.concat ", "
                   (Array.to_list (Array.map string_of_int bounds)))
          | None -> add "}")))
    report.verdicts;
  add "\n  ],\n";
  add "  \"decided\": %d\n" (decided report);
  add "}\n";
  Buffer.contents buf
