(** Closed-form static tests over one scenario — no fixpoint anywhere.

    This module is the single home of the per-stage inequalities the rest
    of the tree consults: the eq-(20) link and eqs-(34)/(35) ingress
    convergence conditions (consumed by [Gmf_lint.Rules] and
    [Analysis.Conditions]), the uncontended response floor behind GMF202,
    a {e necessary} per-frame demand floor (one application of the exact
    stage recurrences at the bottom jitter state — if it already exceeds
    the deadline, the holistic analysis must reject), and a {e sufficient}
    per-frame response ceiling in the spirit of Berten & Goossens'
    non-cyclic GMF test (a linear majorant of MX/NX makes every stage
    recurrence solvable in closed form; if the ceilings meet every
    deadline of every flow of an interference component, the fixed point
    must too). *)

(** {2 Stage utilizations (eqs 20, 34-35 and the egress analogue)} *)

val link_utilization :
  Traffic.Scenario.t -> src:Network.Node.id -> dst:Network.Node.id -> float
(** Left side of eq (20): sum of CSUM/TSUM over flows(src,dst). *)

val ingress_utilization :
  Traffic.Scenario.t -> src:Network.Node.id -> node:Network.Node.id -> float
(** Left side of eqs (34)-(35) for one ingress link: every Ethernet frame
    entering [node] via [src -> node] costs one CIRC rotation. *)

val egress_utilization :
  Traffic.Scenario.t -> Traffic.Flow.t -> node:Network.Node.id -> float
(** Interfering utilization at the flow's egress queue of [node]:
    CSUM/TSUM summed over the flow and hep(flow, node). *)

val stage_utilization :
  Traffic.Scenario.t -> Traffic.Flow.t -> Stage_key.t -> float
(** Dispatch on the stage kind; the ingress link is taken from the flow's
    route. *)

(** {2 Necessary tests} *)

val min_response :
  Traffic.Scenario.t -> Traffic.Flow.t -> frame:int -> Gmf_util.Timeunit.ns
(** GJ + uncontended per-stage response lower bounds (GMF202): own
    transmission + propagation per link, own rotations per ingress. *)

val demand_floor :
  config:Analysis_config.t ->
  Traffic.Scenario.t ->
  Traffic.Flow.t ->
  frame:int ->
  Gmf_util.Timeunit.ns * (Stage_key.t * Gmf_util.Timeunit.ns) list
(** [demand_floor ~config scenario flow ~frame] is a lower bound on the
    frame's end-to-end holistic bound, with the per-stage contributions.

    Sound by construction: jitters only grow from the bottom state (source
    jitters at first links), stage responses are monotone in the jitter
    state, and each stage's fixed point dominates one application of its
    recurrence at [q = 0, l = 0] — so GJ plus those one-shot applications
    (variant-aware: the Repaired own-rotation charges, the uncapped MX of
    repair R7) bounds the real total from below.  If the floor exceeds
    the frame's deadline, the holistic analysis cannot admit the flow. *)

(** {2 Sufficient test} *)

type ceiling = {
  totals : float array;
      (** Per-frame end-to-end response upper bounds, in ns. *)
  binding_frame : int;  (** Frame with the least slack. *)
  binding_stage : Stage_key.t;
      (** Largest per-stage ceiling of the binding frame. *)
  slack : float;  (** min over frames of (deadline - total), in ns. *)
  max_util : float;
      (** Largest self-inclusive stage utilization encountered. *)
}

val response_ceiling :
  config:Analysis_config.t ->
  Traffic.Scenario.t ->
  Traffic.Flow.t ->
  (ceiling, string) result
(** Closed-form per-frame response ceilings for one flow, or the reason no
    ceiling exists ([Error] — an overloaded stage, or a busy-period /
    q-count / horizon guard that cannot be discharged statically).

    Derivation: MX_j(dt) <= CSUM_j * (1 + dt/TSUM_j) and
    NX_j(dt) <= NSUM_j * (1 + dt/TSUM_j) (the window cost of eqs (10)/(12)
    never exceeds the cycle total), and every interferer's jitter is capped
    by its largest source jitter (first links, where jitters are frozen) or
    its largest deadline (assume-guarantee: valid once {e every} flow of
    the interference component is certified — see [Precheck.run], which
    only grants [Schedulable] component-wide).  Each stage's window
    recurrence then has the linear majorant w <= base + A + U * w, the
    busy-period and q/l scans are dominated in closed form, and the stage
    ceiling is (base0 + A)/(1 - U) + carry-in slack + finish terms.

    The ceilings bound the holistic fixed point whenever they all meet the
    component's deadlines, because the state that assigns every flow its
    capped jitters is then invariant under the (monotone) round function,
    squeezing the least fixed point below it. *)

val certifies :
  Traffic.Flow.t -> ceiling -> bool
(** Every frame's ceiling (rounded up to whole ns) meets its deadline. *)
